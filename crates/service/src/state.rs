//! Per-node and per-shard fleet health state.
//!
//! Each simulated node (DIMM/host) carries the paper's [`HealthTable`]
//! plus the page-granular corrected-error counts the HARP-style top-K
//! query needs. Nodes are partitioned across shards by `node % shards`;
//! a shard owns its partition exclusively (actor-per-shard, no locks),
//! so per-node event ordering is total and the merged fleet state is
//! independent of the shard count.

use crate::push::{Tier, Transition};
use crate::rpc::Event;
use ecc_parity::health::{HealthAction, HealthTable};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Fleet-wide node geometry: every node's health table has this shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Channels per node.
    pub channels: u32,
    /// Logical banks per channel (must be even).
    pub banks: u32,
    /// Pair-migration threshold (paper default 4).
    pub threshold: u8,
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry {
            channels: 8,
            banks: 16,
            threshold: 4,
        }
    }
}

impl Geometry {
    /// Identity string stamped into the checkpoint journal header; a
    /// journal written under a different geometry is refused on resume.
    pub fn config_key(&self) -> String {
        format!(
            "eccparity-rpc-v1|channels={}|banks={}|threshold={}",
            self.channels, self.banks, self.threshold
        )
    }
}

/// Risk score at which a node counts as "at risk" in the fleet posture.
pub const AT_RISK_PPM: u64 = 500_000;

/// One node's health state.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    /// The paper's bank-pair table (counters, faulty marks, retired pages).
    table: HealthTable,
    /// Events ingested for this node (persisted, so restarted daemons
    /// answer fleet queries identically).
    events: u64,
    /// Per-page corrected-error counts, keyed `(channel, bank, row)`.
    /// BTreeMap so snapshots and top-K walks are deterministically ordered.
    pages: BTreeMap<(u32, u32, u32), u32>,
    /// Posture tier after the last applied event — the push channel's
    /// transition edge detector. Derived state: never persisted, and
    /// re-derived from `risk_ppm` on restore.
    tier: Tier,
}

impl NodeHealth {
    fn new(geom: Geometry) -> NodeHealth {
        NodeHealth {
            table: HealthTable::new(geom.channels as usize, geom.banks as usize, geom.threshold),
            events: 0,
            pages: BTreeMap::new(),
            tier: Tier::Nominal,
        }
    }

    /// Apply one validated event (caller has bounds-checked channel/bank).
    fn apply(&mut self, ev: &Event) {
        self.events += u64::from(ev.count);
        let (ch, bank) = (ev.channel as usize, ev.bank as usize);
        if ev.bank_fault {
            let pair = self.table.pair_of(ch, bank);
            self.table.mark_faulty(pair);
            return;
        }
        *self.pages.entry((ev.channel, ev.bank, ev.row)).or_insert(0) += ev.count;
        for _ in 0..ev.count {
            match self.table.record_error(ch, bank) {
                HealthAction::RetirePage => self.table.retire_page(ch, bank, ev.row),
                HealthAction::MigratePair | HealthAction::AlreadyFaulty => {}
            }
        }
    }

    /// Deterministic integer UE-risk score in parts-per-million.
    ///
    /// Migrated pairs dominate (the node already burned through its
    /// parity protection somewhere), retired pages and counter pressure
    /// (non-migrated pairs walking toward the threshold) add linearly,
    /// saturating at 1.0.
    pub fn risk_ppm(&self) -> u64 {
        let faulty = self.table.faulty_pair_count() as u64;
        let retired = self.table.retired_count() as u64;
        let pressure = self.table.active_counter_sum();
        (250_000 * faulty + 25_000 * retired + 10_000 * pressure).min(1_000_000)
    }

    fn view(&self, node: u64) -> NodeView {
        NodeView {
            node,
            risk_ppm: self.risk_ppm(),
            events: self.events,
            faulty_pairs: self.table.faulty_pair_count() as u64,
            retired_pages: self.table.retired_count() as u64,
            active_counter_sum: self.table.active_counter_sum(),
        }
    }

    /// Per-channel scheme recommendation (the Luo-style adaptive-capacity
    /// dual of the paper's parity trade): clean regions can reclaim their
    /// ECC capacity, pressured regions should pre-emptively migrate.
    fn recommend(&self, geom: Geometry) -> Vec<RegionRec> {
        (0..geom.channels as usize)
            .map(|ch| {
                let action = if self.table.channel_has_faulty_pair(ch) {
                    // Already migrated: correction bits live in memory.
                    "stored-ecc"
                } else if self.table.max_active_counter_in_channel(ch) + 1 >= geom.threshold {
                    // One more error migrates the pair — do it now, off
                    // the critical path (HARP-style prediction).
                    "premigrate"
                } else if self.table.max_active_counter_in_channel(ch) > 0
                    || self.table.retired_count_in_channel(ch) > 0
                {
                    // Active but below threshold: the paper's scheme is
                    // exactly right here.
                    "ecc-parity"
                } else {
                    // Clean and cold: reclaim the ECC capacity.
                    "reclaim"
                };
                RegionRec {
                    channel: ch as u32,
                    action,
                }
            })
            .collect()
    }
}

/// Rendered per-node summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeView {
    /// Node id.
    pub node: u64,
    /// [`NodeHealth::risk_ppm`].
    pub risk_ppm: u64,
    /// Events ingested for this node.
    pub events: u64,
    /// Migrated pairs.
    pub faulty_pairs: u64,
    /// Retired pages.
    pub retired_pages: u64,
    /// Counter pressure on non-migrated pairs.
    pub active_counter_sum: u64,
}

/// One channel's scheme recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionRec {
    /// Channel index.
    pub channel: u32,
    /// `"reclaim"`, `"ecc-parity"`, `"premigrate"`, or `"stored-ecc"`.
    pub action: &'static str,
}

/// One at-risk page (the HARP-style query's unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRisk {
    /// Owning node.
    pub node: u64,
    /// Channel.
    pub channel: u32,
    /// Bank.
    pub bank: u32,
    /// Row (page).
    pub row: u32,
    /// Corrected errors observed on the page.
    pub ce: u32,
    /// Has the page already been retired?
    pub retired: bool,
}

/// Sort key: most errors first, then lowest address — total and
/// deterministic, so merged top-K lists are stable across shard counts.
fn page_order(a: &PageRisk, b: &PageRisk) -> std::cmp::Ordering {
    b.ce.cmp(&a.ce)
        .then(a.node.cmp(&b.node))
        .then(a.channel.cmp(&b.channel))
        .then(a.bank.cmp(&b.bank))
        .then(a.row.cmp(&b.row))
}

/// Merge per-shard top-K lists into the fleet top-K.
pub fn merge_top_pages(mut lists: Vec<Vec<PageRisk>>, k: usize) -> Vec<PageRisk> {
    let mut all: Vec<PageRisk> = lists.drain(..).flatten().collect();
    all.sort_by(page_order);
    all.truncate(k);
    all
}

/// Additive fleet aggregates from one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardAgg {
    /// Nodes this shard owns.
    pub nodes: u64,
    /// Sum of per-node (persisted) event counts.
    pub events: u64,
    /// Migrated pairs across the shard's nodes.
    pub faulty_pairs: u64,
    /// Retired pages across the shard's nodes.
    pub retired_pages: u64,
    /// Counter pressure across the shard's nodes.
    pub active_counter_sum: u64,
    /// Nodes with [`NodeHealth::risk_ppm`] ≥ [`AT_RISK_PPM`].
    pub at_risk_nodes: u64,
    /// Events applied by this shard this process-run (not persisted).
    pub applied: u64,
    /// Lines this shard rejected this process-run (not persisted).
    pub rejected: u64,
    /// Rejected lines that failed to parse (⊆ `rejected`).
    pub rejected_parse: u64,
    /// Rejected events whose channel/bank fell outside the geometry
    /// (⊆ `rejected`).
    pub rejected_geometry: u64,
}

impl ShardAgg {
    /// Sum two aggregates.
    pub fn merge(&mut self, o: &ShardAgg) {
        self.nodes += o.nodes;
        self.events += o.events;
        self.faulty_pairs += o.faulty_pairs;
        self.retired_pages += o.retired_pages;
        self.active_counter_sum += o.active_counter_sum;
        self.at_risk_nodes += o.at_risk_nodes;
        self.applied += o.applied;
        self.rejected += o.rejected;
        self.rejected_parse += o.rejected_parse;
        self.rejected_geometry += o.rejected_geometry;
    }

    /// Fleet SDC posture from the merged aggregate: `"nominal"` (no
    /// migrations, nobody at risk), `"degraded"` (some), `"critical"`
    /// (≥ 10% of nodes at risk).
    pub fn posture(&self) -> &'static str {
        if self.nodes > 0 && self.at_risk_nodes * 10 >= self.nodes {
            "critical"
        } else if self.faulty_pairs > 0 || self.at_risk_nodes > 0 {
            "degraded"
        } else {
            "nominal"
        }
    }
}

// ---- snapshots (checkpoint payloads) ---------------------------------------

/// One page-count entry of a node snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageCount {
    /// Channel.
    pub channel: u32,
    /// Bank.
    pub bank: u32,
    /// Row.
    pub row: u32,
    /// Corrected errors observed.
    pub count: u32,
}

/// Serialized form of one node (checkpoint journal payload element).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// Node id.
    pub node: u64,
    /// Persisted event count.
    pub events: u64,
    /// Page CE counts, sorted by `(channel, bank, row)`.
    pub pages: Vec<PageCount>,
    /// The node's health table.
    pub health: HealthTable,
}

/// Serialized form of one shard's partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index at checkpoint time (informational; resume repartitions
    /// by `node % shards` for whatever shard count the daemon restarts
    /// with).
    pub shard: u64,
    /// The shard's nodes, sorted by node id.
    pub nodes: Vec<NodeSnapshot>,
}

// ---- shard state -----------------------------------------------------------

/// One shard's partition of the fleet: the state a shard worker owns.
pub struct ShardState {
    geom: Geometry,
    nodes: HashMap<u64, NodeHealth>,
    /// Events applied this process-run.
    pub applied: u64,
    /// Lines applied successfully this process-run (an event line with
    /// `count > 1` bumps `applied` by `count` but this by 1; the batch
    /// retry logic needs line-granular progress).
    pub lines_ok: u64,
    /// Lines rejected this process-run.
    pub rejected: u64,
    /// Rejected lines that failed to parse (garbage, bad JSON, queries
    /// routed into a batch).
    pub rejected_parse: u64,
    /// Rejected events outside the configured geometry.
    pub rejected_geometry: u64,
    /// Posture transitions detected since the last
    /// [`ShardState::take_transitions`] — the shard worker drains these
    /// into the push hub after every batch.
    pending_transitions: Vec<Transition>,
}

impl ShardState {
    /// An empty partition.
    pub fn new(geom: Geometry) -> ShardState {
        ShardState {
            geom,
            nodes: HashMap::new(),
            applied: 0,
            lines_ok: 0,
            rejected: 0,
            rejected_parse: 0,
            rejected_geometry: 0,
            pending_transitions: Vec::new(),
        }
    }

    /// Restore a partition from checkpointed node snapshots.
    pub fn restore(geom: Geometry, snapshots: Vec<NodeSnapshot>) -> ShardState {
        let mut s = ShardState::new(geom);
        for snap in snapshots {
            let mut nh = NodeHealth::new(geom);
            nh.events = snap.events;
            nh.table = snap.health;
            nh.pages = snap
                .pages
                .into_iter()
                .map(|p| ((p.channel, p.bank, p.row), p.count))
                .collect();
            // Tier is derived state: recompute so a resumed daemon only
            // pushes transitions caused by post-resume events.
            nh.tier = Tier::of_risk(nh.risk_ppm());
            s.nodes.insert(snap.node, nh);
        }
        s
    }

    /// Number of nodes in this partition.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Parse and apply one request line that was routed to this shard.
    /// Queries and malformed lines are rejected (counted, with the
    /// rejection reason attributed), never fatal.
    pub fn apply_line(&mut self, line: &[u8]) {
        match crate::rpc::parse_line(line) {
            Ok(crate::rpc::Request::Event(ev)) => {
                if self.apply_event(&ev) {
                    self.applied += u64::from(ev.count);
                    self.lines_ok += 1;
                } else {
                    self.rejected += 1;
                    self.rejected_geometry += 1;
                }
            }
            _ => {
                self.rejected += 1;
                self.rejected_parse += 1;
            }
        }
    }

    /// Lines this shard has consumed (applied or rejected) — the batch
    /// retry logic uses the delta to decide whether a panicked batch made
    /// any progress.
    pub fn lines_consumed(&self) -> u64 {
        self.lines_ok + self.rejected
    }

    /// Apply a parsed event; `false` (rejected) when channel/bank fall
    /// outside the configured geometry. A tier boundary crossed by the
    /// event is recorded for [`ShardState::take_transitions`].
    pub fn apply_event(&mut self, ev: &Event) -> bool {
        if ev.channel >= self.geom.channels || ev.bank >= self.geom.banks {
            return false;
        }
        let geom = self.geom;
        let nh = self
            .nodes
            .entry(ev.node)
            .or_insert_with(|| NodeHealth::new(geom));
        nh.apply(ev);
        let risk_ppm = nh.risk_ppm();
        let to = Tier::of_risk(risk_ppm);
        if to != nh.tier {
            let from = std::mem::replace(&mut nh.tier, to);
            self.pending_transitions.push(Transition {
                node: ev.node,
                from,
                to,
                risk_ppm,
                events: nh.events,
            });
        }
        true
    }

    /// Drain the posture transitions recorded since the last call.
    pub fn take_transitions(&mut self) -> Vec<Transition> {
        std::mem::take(&mut self.pending_transitions)
    }

    /// This shard's additive fleet aggregate.
    pub fn agg(&self) -> ShardAgg {
        let mut a = ShardAgg {
            nodes: self.nodes.len() as u64,
            applied: self.applied,
            rejected: self.rejected,
            rejected_parse: self.rejected_parse,
            rejected_geometry: self.rejected_geometry,
            ..ShardAgg::default()
        };
        for nh in self.nodes.values() {
            a.events += nh.events;
            a.faulty_pairs += nh.table.faulty_pair_count() as u64;
            a.retired_pages += nh.table.retired_count() as u64;
            a.active_counter_sum += nh.table.active_counter_sum();
            if nh.risk_ppm() >= AT_RISK_PPM {
                a.at_risk_nodes += 1;
            }
        }
        a
    }

    /// Per-node view, if this shard knows the node.
    pub fn node_view(&self, node: u64) -> Option<NodeView> {
        self.nodes.get(&node).map(|nh| nh.view(node))
    }

    /// Per-region recommendations, if this shard knows the node.
    pub fn recommend(&self, node: u64) -> Option<Vec<RegionRec>> {
        self.nodes.get(&node).map(|nh| nh.recommend(self.geom))
    }

    /// This shard's top-`k` at-risk pages.
    pub fn top_pages(&self, k: usize) -> Vec<PageRisk> {
        let mut out: Vec<PageRisk> = Vec::new();
        let mut keys: Vec<&u64> = self.nodes.keys().collect();
        keys.sort_unstable();
        for &node in keys {
            let nh = &self.nodes[&node];
            for (&(channel, bank, row), &ce) in &nh.pages {
                out.push(PageRisk {
                    node,
                    channel,
                    bank,
                    row,
                    ce,
                    retired: nh.table.is_retired(channel as usize, bank as usize, row),
                });
            }
        }
        out.sort_by(page_order);
        out.truncate(k);
        out
    }

    /// Serialize this partition (nodes sorted by id).
    pub fn snapshot(&self, shard: u64) -> ShardSnapshot {
        let mut ids: Vec<u64> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        ShardSnapshot {
            shard,
            nodes: ids
                .into_iter()
                .map(|node| {
                    let nh = &self.nodes[&node];
                    NodeSnapshot {
                        node,
                        events: nh.events,
                        pages: nh
                            .pages
                            .iter()
                            .map(|(&(channel, bank, row), &count)| PageCount {
                                channel,
                                bank,
                                row,
                                count,
                            })
                            .collect(),
                        health: nh.table.clone(),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ce(node: u64, channel: u32, bank: u32, row: u32, count: u32) -> Event {
        Event {
            node,
            channel,
            bank,
            row,
            count,
            bank_fault: false,
        }
    }

    #[test]
    fn apply_retires_then_migrates() {
        let geom = Geometry {
            channels: 2,
            banks: 4,
            threshold: 3,
        };
        let mut s = ShardState::new(geom);
        assert!(s.apply_event(&ce(7, 1, 2, 99, 2)));
        let v = s.node_view(7).unwrap();
        assert_eq!(v.events, 2);
        assert_eq!(v.retired_pages, 1);
        assert_eq!(v.faulty_pairs, 0);
        assert_eq!(v.active_counter_sum, 2);
        // Third error on the pair migrates it.
        assert!(s.apply_event(&ce(7, 1, 3, 5, 1)));
        let v = s.node_view(7).unwrap();
        assert_eq!(v.faulty_pairs, 1);
        assert_eq!(v.active_counter_sum, 0, "migrated counter is frozen out");
        assert_eq!(v.risk_ppm, 250_000 + 25_000);
    }

    #[test]
    fn out_of_range_events_reject_without_panic() {
        let mut s = ShardState::new(Geometry::default());
        assert!(!s.apply_event(&ce(1, 8, 0, 0, 1)), "channel out of range");
        assert!(!s.apply_event(&ce(1, 0, 16, 0, 1)), "bank out of range");
        assert_eq!(s.node_count(), 0);
        s.apply_line(b"{\"kind\":\"event\",\"node\":1,\"channel\":99,\"bank\":0,\"row\":0}");
        s.apply_line(b"utter garbage");
        assert_eq!(s.rejected, 2);
        assert_eq!(s.rejected_geometry, 1, "out-of-range channel attributes");
        assert_eq!(s.rejected_parse, 1, "garbage attributes");
        assert_eq!(s.applied, 0);
        assert_eq!(s.lines_ok, 0);
        assert_eq!(s.lines_consumed(), 2);
    }

    #[test]
    fn bank_fault_marks_pair_directly() {
        let mut s = ShardState::new(Geometry::default());
        assert!(s.apply_event(&Event {
            node: 3,
            channel: 2,
            bank: 5,
            row: 0,
            count: 1,
            bank_fault: true,
        }));
        let v = s.node_view(3).unwrap();
        assert_eq!(v.faulty_pairs, 1);
        assert_eq!(v.retired_pages, 0);
        let recs = s.recommend(3).unwrap();
        assert_eq!(recs[2].action, "stored-ecc");
        assert_eq!(recs[0].action, "reclaim");
    }

    #[test]
    fn recommendations_cover_all_tiers() {
        let geom = Geometry {
            channels: 4,
            banks: 4,
            threshold: 4,
        };
        let mut s = ShardState::new(geom);
        // ch0: clean. ch1: one error (ecc-parity). ch2: threshold-1
        // errors (premigrate). ch3: migrated (stored-ecc).
        s.apply_event(&ce(1, 1, 0, 5, 1));
        s.apply_event(&ce(1, 2, 0, 5, 3));
        s.apply_event(&ce(1, 3, 0, 5, 4));
        let recs = s.recommend(1).unwrap();
        assert_eq!(
            recs.iter().map(|r| r.action).collect::<Vec<_>>(),
            vec!["reclaim", "ecc-parity", "premigrate", "stored-ecc"]
        );
    }

    #[test]
    fn top_pages_orders_by_count_then_address() {
        let mut s = ShardState::new(Geometry::default());
        s.apply_event(&ce(2, 0, 0, 10, 3));
        s.apply_event(&ce(1, 0, 0, 10, 3));
        s.apply_event(&ce(1, 0, 0, 11, 7));
        let top = s.top_pages(2);
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].node, top[0].row, top[0].ce), (1, 11, 7));
        assert_eq!((top[1].node, top[1].row, top[1].ce), (1, 10, 3));
        // Row 11's first error was already the pair's 4th: the pair
        // migrated instead of retiring the page. Row 10's errors were all
        // below threshold, so each retired its page.
        assert!(!top[0].retired, "threshold strike migrates, not retires");
        assert!(top[1].retired, "below-threshold CE retires the page");
        let merged = merge_top_pages(vec![s.top_pages(3), vec![]], 1);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].node, 1);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let geom = Geometry {
            channels: 4,
            banks: 8,
            threshold: 2,
        };
        let mut s = ShardState::new(geom);
        for i in 0..40u32 {
            s.apply_event(&ce(u64::from(i % 5), i % 4, i % 8, i, 1 + i % 3));
        }
        let snap = s.snapshot(0);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ShardSnapshot = serde_json::from_str(&json).unwrap();
        let r = ShardState::restore(geom, back.nodes);
        assert_eq!(r.node_count(), s.node_count());
        assert_eq!(r.agg().events, s.agg().events);
        assert_eq!(r.agg().faulty_pairs, s.agg().faulty_pairs);
        assert_eq!(r.agg().retired_pages, s.agg().retired_pages);
        assert_eq!(r.top_pages(10), s.top_pages(10));
        for n in 0..5 {
            assert_eq!(r.node_view(n), s.node_view(n), "node {n}");
            assert_eq!(r.recommend(n), s.recommend(n), "node {n}");
        }
    }

    #[test]
    fn posture_tiers() {
        let mut a = ShardAgg::default();
        assert_eq!(a.posture(), "nominal");
        a.nodes = 100;
        a.faulty_pairs = 1;
        assert_eq!(a.posture(), "degraded");
        a.at_risk_nodes = 10;
        assert_eq!(a.posture(), "critical");
    }
}
