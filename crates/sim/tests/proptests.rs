//! Property-based tests of the full-system simulator's invariants.

use mem_sim::{LlcConfig, RunConfig, SchemeConfig, SchemeId, SimRunner, SystemScale, WorkloadSpec};
use proptest::prelude::*;

fn quick_cfg(id: SchemeId, wname: &str, seed: u64, accesses: usize) -> RunConfig {
    let built = SchemeConfig::build(id, SystemScale::QuadEquivalent);
    let line_bytes = built.mem.line_bytes;
    let mut cfg = RunConfig::paper(built, WorkloadSpec::by_name(wname).unwrap());
    cfg.cores = 2;
    cfg.warmup_per_core = 500;
    cfg.accesses_per_core = accesses;
    cfg.seed = seed;
    cfg.llc = Some(LlcConfig {
        capacity_bytes: 64 * 1024,
        ways: 8,
        line_bytes,
    });
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn accounting_identities_hold_for_any_seed(
        seed in any::<u64>(),
        widx in 0usize..16,
    ) {
        let w = WorkloadSpec::all()[widx];
        let cfg = quick_cfg(SchemeId::Lot5Parity, w.name, seed, 2_000);
        let r = SimRunner::new(cfg).run();
        // LLC sees every core reference (plus ECC-line merges).
        prop_assert!(r.llc.hits + r.llc.misses >= 2 * 2_000);
        // Traffic: misses produce fills.
        prop_assert!(r.traffic.data_read_units > 0);
        // XOR parity traffic is read/write balanced.
        prop_assert_eq!(r.traffic.ecc_read_units, r.traffic.ecc_write_units);
        // Energy identity.
        prop_assert!((r.epi_pj() - (r.dynamic_epi_pj() + r.background_epi_pj())).abs() < 1e-9);
        // Bandwidth is finite and positive.
        prop_assert!(r.bandwidth_gbs() > 0.0 && r.bandwidth_gbs() < 200.0);
    }

    #[test]
    fn seed_determinism_for_every_scheme(
        seed in any::<u64>(),
        sidx in 0usize..8,
    ) {
        let id = SchemeId::ALL[sidx];
        let a = SimRunner::new(quick_cfg(id, "gcc", seed, 1_500)).run();
        let b = SimRunner::new(quick_cfg(id, "gcc", seed, 1_500)).run();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.traffic, b.traffic);
        prop_assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn more_work_takes_more_time_and_energy(
        seed in any::<u64>(),
    ) {
        let small = SimRunner::new(quick_cfg(SchemeId::Ck18, "milc", seed, 1_000)).run();
        let large = SimRunner::new(quick_cfg(SchemeId::Ck18, "milc", seed, 4_000)).run();
        prop_assert!(large.cycles > small.cycles);
        prop_assert!(large.energy.total_pj() > small.energy.total_pj());
        prop_assert!(large.instructions > small.instructions);
    }
}
