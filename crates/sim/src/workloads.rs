//! Synthetic workload generators standing in for the paper's 12 SPEC and 4
//! PARSEC eight-core workloads.
//!
//! The evaluation consumes only the workloads' *memory reference behaviour*:
//! how often the LLC is accessed per instruction, the read/write mix, how
//! sequential the address stream is (spatial locality — what 128B-line
//! systems exploit), and how much of the footprint re-hits the LLC
//! (temporal locality — what determines the miss rate and therefore
//! bandwidth). Each generator is a two-region model:
//!
//! * a **hot set** sized to (partially) fit the LLC, giving temporal reuse;
//! * a **cold stream** over a large footprint with geometrically-distributed
//!   sequential run lengths, giving tunable spatial locality and misses.
//!
//! Parameters are calibrated so the bandwidth ordering and Bin1/Bin2 split
//! match the paper's Fig. 9 characterization (Bin2 = the eight workloads
//! with higher memory access rates).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Static description of one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(clippy::derive_partial_eq_without_eq)]
pub struct WorkloadSpec {
    pub name: &'static str,
    /// LLC accesses per kilo-instruction (post L1-filter).
    pub lapki: f64,
    /// Fraction of LLC accesses that are stores.
    pub write_frac: f64,
    /// Probability an access goes to the hot (LLC-resident) set.
    pub hot_frac: f64,
    /// Hot-set size in 64B lines (per core).
    pub hot_lines: u64,
    /// Cold-footprint size in 64B lines (per core).
    pub cold_lines: u64,
    /// Mean sequential run length (in 64B lines) of the cold stream.
    pub seq_run: f64,
    /// Concurrent cold streams the workload walks (scientific codes sweep
    /// several arrays at once; pointer chasers follow one or two). Spreads
    /// instantaneous channel pressure the way real access streams do.
    pub streams: usize,
    /// Paper bin: 1 = lower access rate, 2 = higher.
    pub bin: u8,
}

/// The eight lower-bandwidth workloads (Bin1).
pub const BIN1: [&str; 8] = [
    "sjeng", "omnetpp", "astar", "gcc", "soplex", "bwaves", "facesim", "ferret",
];

/// The eight higher-bandwidth workloads (Bin2).
pub const BIN2: [&str; 8] = [
    "mcf",
    "lbm",
    "milc",
    "libquantum",
    "leslie3d",
    "GemsFDTD",
    "canneal",
    "streamcluster",
];

static ALL_SPECS: std::sync::OnceLock<Vec<WorkloadSpec>> = std::sync::OnceLock::new();

impl WorkloadSpec {
    /// [`Self::all`] built once and borrowed forever — for harness code
    /// that walks the table per row/cell and shouldn't rebuild it.
    pub fn all_static() -> &'static [WorkloadSpec] {
        ALL_SPECS.get_or_init(Self::all)
    }

    /// All sixteen evaluated workloads (12 SPEC + 4 PARSEC).
    pub fn all() -> Vec<WorkloadSpec> {
        vec![
            // ---- Bin2: memory-intensive ----
            // mcf: pointer chasing over a huge footprint, low spatial locality
            WorkloadSpec {
                name: "mcf",
                lapki: 27.0,
                write_frac: 0.28,
                hot_frac: 0.35,
                hot_lines: 6_000,
                cold_lines: 3_000_000,
                seq_run: 1.3,
                streams: 2,
                bin: 2,
            },
            // lbm: streaming stencil, long runs, write heavy
            WorkloadSpec {
                name: "lbm",
                lapki: 25.2,
                write_frac: 0.45,
                hot_frac: 0.20,
                hot_lines: 4_000,
                cold_lines: 2_500_000,
                seq_run: 12.0,
                streams: 8,
                bin: 2,
            },
            // milc: lattice QCD, large streams, moderate locality
            WorkloadSpec {
                name: "milc",
                lapki: 22.8,
                write_frac: 0.35,
                hot_frac: 0.25,
                hot_lines: 5_000,
                cold_lines: 2_000_000,
                seq_run: 4.0,
                streams: 6,
                bin: 2,
            },
            // libquantum: perfectly streaming over one big vector
            WorkloadSpec {
                name: "libquantum",
                lapki: 24.0,
                write_frac: 0.25,
                hot_frac: 0.10,
                hot_lines: 2_000,
                cold_lines: 1_500_000,
                seq_run: 16.0,
                streams: 3,
                bin: 2,
            },
            // leslie3d: multigrid CFD, mixed streams
            WorkloadSpec {
                name: "leslie3d",
                lapki: 19.8,
                write_frac: 0.35,
                hot_frac: 0.30,
                hot_lines: 6_000,
                cold_lines: 1_800_000,
                seq_run: 6.0,
                streams: 8,
                bin: 2,
            },
            // GemsFDTD: FDTD solver, large working set, fair locality
            WorkloadSpec {
                name: "GemsFDTD",
                lapki: 21.0,
                write_frac: 0.38,
                hot_frac: 0.30,
                hot_lines: 8_000,
                cold_lines: 2_200_000,
                seq_run: 5.0,
                streams: 8,
                bin: 2,
            },
            // canneal (PARSEC): random pointer walks over a huge netlist
            WorkloadSpec {
                name: "canneal",
                lapki: 21.6,
                write_frac: 0.22,
                hot_frac: 0.30,
                hot_lines: 8_000,
                cold_lines: 4_000_000,
                seq_run: 1.15,
                streams: 2,
                bin: 2,
            },
            // streamcluster (PARSEC): dense distance computations — the
            // paper's showcase of high spatial locality (~20% faster on
            // 128B-line systems)
            WorkloadSpec {
                name: "streamcluster",
                lapki: 24.0,
                write_frac: 0.15,
                hot_frac: 0.22,
                hot_lines: 4_000,
                cold_lines: 1_200_000,
                seq_run: 48.0,
                streams: 4,
                bin: 2,
            },
            // ---- Bin1: moderate access rates (all >= 1% bandwidth) ----
            // sjeng: game tree search, small hot set, sparse misses
            WorkloadSpec {
                name: "sjeng",
                lapki: 4.8,
                write_frac: 0.30,
                hot_frac: 0.80,
                hot_lines: 10_000,
                cold_lines: 700_000,
                seq_run: 1.2,
                streams: 2,
                bin: 1,
            },
            // omnetpp: discrete event simulation, heap-heavy, poor locality
            WorkloadSpec {
                name: "omnetpp",
                lapki: 8.4,
                write_frac: 0.35,
                hot_frac: 0.65,
                hot_lines: 12_000,
                cold_lines: 1_500_000,
                seq_run: 1.2,
                streams: 2,
                bin: 1,
            },
            // astar: pathfinding, moderate reuse
            WorkloadSpec {
                name: "astar",
                lapki: 7.2,
                write_frac: 0.28,
                hot_frac: 0.70,
                hot_lines: 9_000,
                cold_lines: 900_000,
                seq_run: 1.5,
                streams: 2,
                bin: 1,
            },
            // gcc: compiler, bursty small structures
            WorkloadSpec {
                name: "gcc",
                lapki: 6.0,
                write_frac: 0.32,
                hot_frac: 0.72,
                hot_lines: 11_000,
                cold_lines: 800_000,
                seq_run: 2.0,
                streams: 3,
                bin: 1,
            },
            // soplex: sparse LP solver, moderate streams
            WorkloadSpec {
                name: "soplex",
                lapki: 10.8,
                write_frac: 0.25,
                hot_frac: 0.55,
                hot_lines: 8_000,
                cold_lines: 1_200_000,
                seq_run: 3.0,
                streams: 4,
                bin: 1,
            },
            // bwaves: blast-wave CFD, streaming but cache-friendlier blocks
            WorkloadSpec {
                name: "bwaves",
                lapki: 12.0,
                write_frac: 0.30,
                hot_frac: 0.50,
                hot_lines: 10_000,
                cold_lines: 1_600_000,
                seq_run: 8.0,
                streams: 6,
                bin: 1,
            },
            // facesim (PARSEC): physics solver, mixed
            WorkloadSpec {
                name: "facesim",
                lapki: 9.6,
                write_frac: 0.35,
                hot_frac: 0.60,
                hot_lines: 9_000,
                cold_lines: 1_000_000,
                seq_run: 4.0,
                streams: 4,
                bin: 1,
            },
            // ferret (PARSEC): similarity search pipeline
            WorkloadSpec {
                name: "ferret",
                lapki: 7.8,
                write_frac: 0.22,
                hot_frac: 0.68,
                hot_lines: 10_000,
                cold_lines: 1_100_000,
                seq_run: 2.5,
                streams: 3,
                bin: 1,
            },
        ]
    }

    /// Synthetic microbenchmarks with analytically-known behaviour, used to
    /// validate the simulator itself (see the `microbench` binary):
    /// `stream` saturates bandwidth, `randomwalk` is latency/MLP-bound, and
    /// `cached` should barely touch memory.
    pub fn microbenchmarks() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec {
                name: "stream",
                lapki: 50.0,
                write_frac: 0.33, // a[i] = b[i] + c[i]: 2 reads, 1 write
                hot_frac: 0.0,
                hot_lines: 1,
                cold_lines: 4_000_000,
                seq_run: 512.0,
                streams: 3,
                bin: 2,
            },
            WorkloadSpec {
                name: "randomwalk",
                lapki: 30.0,
                write_frac: 0.0,
                hot_frac: 0.0,
                hot_lines: 1,
                cold_lines: 8_000_000,
                seq_run: 1.0,
                streams: 1,
                bin: 2,
            },
            WorkloadSpec {
                name: "cached",
                lapki: 40.0,
                write_frac: 0.3,
                hot_frac: 0.999,
                hot_lines: 2_000,
                cold_lines: 100_000,
                seq_run: 1.0,
                streams: 1,
                bin: 1,
            },
        ]
    }

    /// Look up a workload by name (paper workloads and microbenchmarks).
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        Self::all()
            .into_iter()
            .chain(Self::microbenchmarks())
            .find(|w| w.name == name)
    }

    /// Every valid workload name, in registry order.
    pub fn names() -> Vec<&'static str> {
        Self::all()
            .into_iter()
            .chain(Self::microbenchmarks())
            .map(|w| w.name)
            .collect()
    }

    /// Like [`WorkloadSpec::by_name`], but failure carries the offending
    /// name and the full list of valid names — suitable for CLI error
    /// messages and for surfacing typos in config files.
    pub fn lookup(name: &str) -> Result<WorkloadSpec, UnknownWorkload> {
        Self::by_name(name).ok_or_else(|| UnknownWorkload {
            name: name.to_string(),
            valid: Self::names(),
        })
    }

    /// Mean instructions between LLC accesses.
    pub fn instr_per_access(&self) -> f64 {
        1000.0 / self.lapki
    }
}

/// Error from [`WorkloadSpec::lookup`]: the requested workload does not
/// exist. Carries the valid names so callers can print an actionable
/// message instead of a bare panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload {
    /// The name that failed to resolve.
    pub name: String,
    /// All registered workload names.
    pub valid: Vec<&'static str>,
}

impl std::fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown workload `{}`; valid names: {}",
            self.name,
            self.valid.join(", ")
        )
    }
}

impl std::error::Error for UnknownWorkload {}

/// One memory reference produced by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRef {
    /// 64B-line-granular address (per-core virtual space; the runner offsets
    /// per core and maps into the physical space).
    pub line: u64,
    pub is_write: bool,
    /// Instructions executed since the previous reference.
    pub gap_instr: u32,
}

/// Stateful per-core generator.
pub struct Workload {
    spec: WorkloadSpec,
    rng: StdRng,
    /// Concurrent cold streams: (position, remaining run length).
    cold: Vec<(u64, u32)>,
    /// Dedicated store streams: writes to the cold footprint cluster into
    /// output arrays (streaming stores), with longer runs than reads.
    wcold: Vec<(u64, u32)>,
}

impl Workload {
    pub fn new(spec: WorkloadSpec, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D_F00D);
        let cold = (0..spec.streams.max(1))
            .map(|_| (rng.gen_range(0..spec.cold_lines), 0u32))
            .collect();
        let wcold = (0..(spec.streams / 2).max(1))
            .map(|_| (rng.gen_range(0..spec.cold_lines), 0u32))
            .collect();
        Workload {
            spec,
            rng,
            cold,
            wcold,
        }
    }

    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Next memory reference.
    pub fn next_ref(&mut self) -> MemRef {
        let s = self.spec;
        // Geometric gap around the mean instruction distance.
        let mean = s.instr_per_access();
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap_instr = (-(mean) * u.ln()).round().min(100_000.0) as u32;
        let is_write = self.rng.gen_bool(s.write_frac);
        let line = if self.rng.gen_bool(s.hot_frac) {
            // Hot set: lines [0, hot_lines).
            self.rng.gen_range(0..s.hot_lines)
        } else {
            // Pick one of the concurrent cold streams (stores use the
            // dedicated, longer-running write streams); continue its
            // sequential run or jump it somewhere new.
            let (streams, run_mean) = if is_write {
                (&mut self.wcold, 2.0 * s.seq_run)
            } else {
                (&mut self.cold, s.seq_run)
            };
            let k = self.rng.gen_range(0..streams.len());
            let (ref mut pos, ref mut run_left) = streams[k];
            if *run_left == 0 {
                *pos = self.rng.gen_range(0..s.cold_lines);
                // Geometric run length with the configured mean.
                let p = 1.0 / run_mean.max(1.0);
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                *run_left = (u.ln() / (1.0 - p).max(1e-9).ln()).ceil().max(1.0) as u32;
            }
            *run_left -= 1;
            *pos = (*pos + 1) % s.cold_lines;
            // Cold lines sit above the hot set in the address space.
            s.hot_lines + *pos
        };
        MemRef {
            line,
            is_write,
            gap_instr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_workloads_with_even_bins() {
        let all = WorkloadSpec::all();
        assert_eq!(all.len(), 16);
        assert_eq!(all.iter().filter(|w| w.bin == 1).count(), 8);
        assert_eq!(all.iter().filter(|w| w.bin == 2).count(), 8);
        for name in BIN1.iter().chain(BIN2.iter()) {
            let w = WorkloadSpec::by_name(name).expect(name);
            let expect_bin = if BIN1.contains(name) { 1 } else { 2 };
            assert_eq!(w.bin, expect_bin, "{name}");
        }
    }

    #[test]
    fn lookup_reports_unknown_name_with_valid_list() {
        assert_eq!(
            WorkloadSpec::lookup("milc").unwrap(),
            WorkloadSpec::by_name("milc").unwrap()
        );
        let err = WorkloadSpec::lookup("mlic").unwrap_err();
        assert_eq!(err.name, "mlic");
        assert_eq!(err.valid, WorkloadSpec::names());
        let msg = err.to_string();
        assert!(msg.contains("unknown workload `mlic`"));
        assert!(msg.contains("milc"), "message lists valid names: {msg}");
        assert!(msg.contains("stream"), "microbenchmarks included: {msg}");
    }

    #[test]
    fn bin2_has_higher_access_rates() {
        let all = WorkloadSpec::all();
        let avg = |bin: u8| {
            let v: Vec<f64> = all
                .iter()
                .filter(|w| w.bin == bin)
                .map(|w| w.lapki)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(2) > 2.0 * avg(1));
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let spec = WorkloadSpec::by_name("mcf").unwrap();
        let refs1: Vec<_> = {
            let mut w = Workload::new(spec, 42);
            (0..100).map(|_| w.next_ref()).collect()
        };
        let refs2: Vec<_> = {
            let mut w = Workload::new(spec, 42);
            (0..100).map(|_| w.next_ref()).collect()
        };
        assert_eq!(refs1, refs2);
        let refs3: Vec<_> = {
            let mut w = Workload::new(spec, 43);
            (0..100).map(|_| w.next_ref()).collect()
        };
        assert_ne!(refs1, refs3);
    }

    #[test]
    fn write_fraction_tracks_spec() {
        let spec = WorkloadSpec::by_name("lbm").unwrap();
        let mut w = Workload::new(spec, 7);
        let n = 20_000;
        let writes = (0..n).filter(|_| w.next_ref().is_write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - spec.write_frac).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn streaming_workload_has_long_runs() {
        let sc = WorkloadSpec::by_name("streamcluster").unwrap();
        let mut w = Workload::new(sc, 9);
        let refs: Vec<u64> = (0..50_000).map(|_| w.next_ref().line).collect();
        let seq =
            refs.windows(2).filter(|p| p[1] == p[0] + 1).count() as f64 / (refs.len() - 1) as f64;
        let canneal = WorkloadSpec::by_name("canneal").unwrap();
        let mut w2 = Workload::new(canneal, 9);
        let refs2: Vec<u64> = (0..50_000).map(|_| w2.next_ref().line).collect();
        let seq2 =
            refs2.windows(2).filter(|p| p[1] == p[0] + 1).count() as f64 / (refs2.len() - 1) as f64;
        assert!(
            seq > 2.0 * seq2,
            "streamcluster sequentiality {seq} must dwarf canneal {seq2}"
        );
    }

    #[test]
    fn gap_mean_tracks_lapki() {
        let spec = WorkloadSpec::by_name("sjeng").unwrap();
        let mut w = Workload::new(spec, 11);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| w.next_ref().gap_instr as u64).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - spec.instr_per_access()).abs() < spec.instr_per_access() * 0.05,
            "mean gap {mean} vs expected {}",
            spec.instr_per_access()
        );
    }
}
