//! The full-system simulation loop: eight workload-driven cores share an
//! LLC and a multi-channel DRAM system through one resilience scheme's
//! traffic glue. Produces the measurements behind the paper's Figs 9–17.
//!
//! Event order: the core with the smallest local clock takes the next step,
//! so memory requests arrive in near-global time order. A step is one LLC
//! access: the generator supplies the instruction gap since the previous
//! access; misses become DRAM reads that pace the core through its bounded
//! MLP window; dirty victims, ECC-cacheline victims, and XOR-cacheline
//! victims become the background write (and parity read-modify-write)
//! traffic of §IV-C.

use crate::cpu::{CoreConfig, CoreState};
use crate::llc::{Llc, LlcConfig, LlcStats};
use crate::schemes::{EccTraffic, SchemeConfig, ECC_REGION_BASE, XOR_REGION_BASE};
use crate::trace::{Trace, TraceCursor};
use crate::workloads::{MemRef, Workload, WorkloadSpec};
use dram_sim::{EnergyBreakdown, MemRequest, MemorySystem};
use serde::{Deserialize, Serialize};

/// Per-core virtual address stride (in 64B lines): 512MB per core.
const CORE_STRIDE: u64 = 8 * 1024 * 1024;

/// Line-address region for the stored ECC lines of migrated (faulty) bank
/// pairs — distinct from the parity/ECC-update regions.
pub const FAULTY_ECC_REGION_BASE: u64 = 1 << 44;

/// Degraded-mode configuration: one bank pair of one channel has migrated
/// to stored ECC correction bits (paper §III-B/§III-C). Application reads
/// to it fetch the covering ECC line in parallel (Fig 6 step B, cached in
/// the LLC per §III-D); writes update it (step D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedConfig {
    pub channel: usize,
    /// Bank pair index (banks 2p and 2p+1 of every rank of the channel).
    pub pair: usize,
}

/// Where a core's references come from: the live synthetic generator or a
/// recorded trace.
enum RefSource {
    Live(Workload),
    Replay(TraceCursor),
}

impl RefSource {
    fn next_ref(&mut self) -> MemRef {
        match self {
            RefSource::Live(w) => w.next_ref(),
            RefSource::Replay(c) => c.next_ref(),
        }
    }
}

/// One simulation's inputs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub scheme: SchemeConfig,
    pub workload: WorkloadSpec,
    pub cores: usize,
    /// LLC accesses per core before measurement starts.
    pub warmup_per_core: usize,
    /// Measured LLC accesses per core.
    pub accesses_per_core: usize,
    pub seed: u64,
    pub core_config: CoreConfig,
    /// LLC geometry; `None` = the paper's 8MB/16-way at the scheme's line
    /// size. Tests and ablations shrink it to create realistic pressure at
    /// reduced access counts.
    pub llc: Option<LlcConfig>,
    /// Degraded-mode state: a migrated bank pair (ECC Parity schemes only).
    pub degraded: Option<DegradedConfig>,
    /// Heterogeneous multiprogramming: per-core workloads overriding
    /// `workload` (an extension beyond the paper's 8-same-instance mixes).
    /// Length must equal `cores` when set.
    pub per_core_workloads: Option<Vec<WorkloadSpec>>,
    /// Replay a recorded trace instead of the live generators. Core count
    /// is clamped to the trace's streams; `workload` is used for labels.
    pub trace: Option<Trace>,
}

impl RunConfig {
    /// Paper-shaped run: eight cores, 8MB LLC.
    pub fn paper(scheme: SchemeConfig, workload: WorkloadSpec) -> RunConfig {
        RunConfig {
            scheme,
            workload,
            cores: 8,
            warmup_per_core: 50_000,
            accesses_per_core: 100_000,
            seed: 0xECC_9A817,
            core_config: CoreConfig::default(),
            llc: None,
            degraded: None,
            per_core_workloads: None,
            trace: None,
        }
    }

    fn llc_config(&self) -> LlcConfig {
        self.llc
            .unwrap_or_else(|| LlcConfig::paper(self.scheme.mem.line_bytes))
    }
}

/// Traffic counters, all in 64B units (Fig 16's counting rule).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficCounters {
    pub data_read_units: u64,
    pub data_write_units: u64,
    pub ecc_read_units: u64,
    pub ecc_write_units: u64,
    /// Step B/D traffic: ECC-line reads/writes for migrated (faulty) banks.
    pub faulty_ecc_units: u64,
}

impl TrafficCounters {
    pub fn total_units(&self) -> u64 {
        self.data_read_units
            + self.data_write_units
            + self.ecc_read_units
            + self.ecc_write_units
            + self.faulty_ecc_units
    }
}

/// One simulation's outputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    pub scheme_name: &'static str,
    pub workload_name: &'static str,
    pub instructions: u64,
    /// Runtime in memory-clock cycles (ns).
    pub cycles: u64,
    pub traffic: TrafficCounters,
    pub energy: EnergyBreakdown,
    pub llc: LlcStats,
    /// Memory requests issued (line-granular).
    pub mem_requests: u64,
    /// Mean memory-request latency (arrival to data), cycles.
    pub avg_mem_latency: f64,
}

impl RunResult {
    /// Memory energy per instruction, pJ.
    pub fn epi_pj(&self) -> f64 {
        self.energy.total_pj() / self.instructions as f64
    }

    pub fn dynamic_epi_pj(&self) -> f64 {
        self.energy.dynamic_pj() / self.instructions as f64
    }

    pub fn background_epi_pj(&self) -> f64 {
        self.energy.background_pj() / self.instructions as f64
    }

    /// 64B memory accesses per instruction (Fig 16/17 metric).
    pub fn units_per_instruction(&self) -> f64 {
        self.traffic.total_units() as f64 / self.instructions as f64
    }

    /// Average memory bandwidth in GB/s (1 cycle = 1 ns).
    pub fn bandwidth_gbs(&self) -> f64 {
        self.traffic.total_units() as f64 * 64.0 / self.cycles as f64
    }

    /// Data-bus utilization: burst cycles over available channel-cycles.
    pub fn bus_utilization(&self, channels: usize, burst_cycles: u64) -> f64 {
        (self.mem_requests * burst_cycles) as f64 / (self.cycles as f64 * channels as f64)
    }
}

/// The simulator.
pub struct SimRunner {
    config: RunConfig,
}

impl SimRunner {
    pub fn new(config: RunConfig) -> SimRunner {
        assert!(config.cores >= 1);
        SimRunner { config }
    }

    /// Execute warmup + measurement; return the measured-phase result.
    pub fn run(&self) -> RunResult {
        let cfg = &self.config;
        let units = cfg.scheme.units_per_access();
        let mut llc = Llc::new(cfg.llc_config());
        if let Some(per_core) = &cfg.per_core_workloads {
            assert_eq!(per_core.len(), cfg.cores, "one workload per core");
        }
        let spec_of = |c: usize| {
            cfg.per_core_workloads
                .as_ref()
                .map(|v| v[c])
                .unwrap_or(cfg.workload)
        };
        let mut gens: Vec<RefSource> = if let Some(trace) = &cfg.trace {
            assert!(
                trace.cores() >= cfg.cores,
                "trace has {} streams, run wants {} cores",
                trace.cores(),
                cfg.cores
            );
            (0..cfg.cores)
                .map(|c| RefSource::Replay(TraceCursor::new(trace.per_core[c].clone())))
                .collect()
        } else {
            (0..cfg.cores)
                .map(|c| {
                    RefSource::Live(Workload::new(
                        spec_of(c),
                        cfg.seed.wrapping_add(c as u64 * 0x9E37),
                    ))
                })
                .collect()
        };

        // ---- warmup: fills the LLC; throwaway memory system paces cores ----
        {
            let mut mem = MemorySystem::new(cfg.scheme.mem.clone());
            let mut cores: Vec<CoreState> = (0..cfg.cores)
                .map(|_| CoreState::new(cfg.core_config))
                .collect();
            let mut traffic = TrafficCounters::default();
            let mut reqs = 0u64;
            self.phase(
                cfg.warmup_per_core,
                &mut cores,
                &mut gens,
                &mut llc,
                &mut mem,
                units,
                &mut traffic,
                &mut reqs,
            );
        }

        // ---- measurement: fresh clocks and a fresh memory system ----
        let llc_before = *llc.stats();
        let mut mem = MemorySystem::new(cfg.scheme.mem.clone());
        let mut cores: Vec<CoreState> = (0..cfg.cores)
            .map(|_| CoreState::new(cfg.core_config))
            .collect();
        let mut traffic = TrafficCounters::default();
        let mut reqs = 0u64;
        self.phase(
            cfg.accesses_per_core,
            &mut cores,
            &mut gens,
            &mut llc,
            &mut mem,
            units,
            &mut traffic,
            &mut reqs,
        );
        for c in &mut cores {
            c.drain_all();
        }
        let cycles = cores.iter().map(|c| c.cycle).max().unwrap().max(1);
        let instructions = cores.iter().map(|c| c.instructions).sum::<u64>().max(1);
        let avg_mem_latency = mem.stats().avg_latency();
        mem.finalize(cycles);

        let llc_after = *llc.stats();
        RunResult {
            scheme_name: cfg.scheme.name,
            workload_name: cfg.workload.name,
            instructions,
            cycles,
            traffic,
            energy: mem.energy(),
            llc: LlcStats {
                hits: llc_after.hits - llc_before.hits,
                misses: llc_after.misses - llc_before.misses,
                writebacks: llc_after.writebacks - llc_before.writebacks,
            },
            mem_requests: reqs,
            avg_mem_latency,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn phase(
        &self,
        per_core: usize,
        cores: &mut [CoreState],
        gens: &mut [RefSource],
        llc: &mut Llc,
        mem: &mut MemorySystem,
        units: u64,
        traffic: &mut TrafficCounters,
        reqs: &mut u64,
    ) {
        let cfg = &self.config;
        let has_ecc = !matches!(cfg.scheme.traffic, EccTraffic::Inline);
        let mut done = vec![0usize; cores.len()];
        let total = per_core * cores.len();
        for _ in 0..total {
            // Core with the smallest clock among unfinished ones.
            let c = (0..cores.len())
                .filter(|&i| done[i] < per_core)
                .min_by_key(|&i| cores[i].cycle)
                .expect("some core unfinished");
            done[c] += 1;
            let r = gens[c].next_ref();

            cores[c].advance_instructions(r.gap_instr);
            let phys64 = c as u64 * CORE_STRIDE + r.line;
            let mem_line = phys64 / units;

            // Step A1/A2 of Fig 6: the bank-health lookup (an on-chip SRAM
            // probe, no time charged) — is this access to a migrated pair?
            let faulty = cfg
                .degraded
                .map(|d| {
                    let la = mem.mapping().map(mem_line);
                    la.channel == d.channel && la.bank / 2 == d.pair
                })
                .unwrap_or(false);

            let out = llc.access(mem_line, r.is_write);
            if out.hit {
                cores[c].charge_llc_hit();
            } else {
                // Line fill from memory (write misses fetch-for-ownership).
                let comp = mem.submit(MemRequest {
                    line_addr: mem_line,
                    is_write: false,
                    arrival: cores[c].cycle,
                });
                *reqs += 1;
                traffic.data_read_units += units;
                let mut fill_done = comp.finish;
                if faulty {
                    // Step B: the covering ECC line is read in parallel with
                    // the data (Fig 5's cross-bank placement lets them
                    // overlap); it is LLC-cached per §III-D. One ECC line
                    // holds 2R-sized correction bits for `line/2R` lines.
                    let eaddr = FAULTY_ECC_REGION_BASE + mem_line / 2;
                    let eout = llc.access(eaddr, false);
                    if !eout.hit {
                        let ecomp = mem.submit(MemRequest {
                            line_addr: eaddr,
                            is_write: false,
                            arrival: cores[c].cycle,
                        });
                        *reqs += 1;
                        traffic.faulty_ecc_units += 1;
                        fill_done = fill_done.max(ecomp.finish);
                        if let Some(victim) = eout.writeback {
                            self.writeback(victim, cores[c].cycle, mem, units, traffic, reqs);
                        }
                    }
                }
                cores[c].issue_fill(fill_done);
                if let Some(victim) = out.writeback {
                    self.writeback(victim, cores[c].cycle, mem, units, traffic, reqs);
                }
            }
            if faulty && r.is_write {
                // Step D: the dirty line's ECC line must be updated; merge
                // in the LLC, written back on eviction.
                let eaddr = FAULTY_ECC_REGION_BASE + mem_line / 2;
                let eout = llc.access(eaddr, true);
                if let Some(victim) = eout.writeback {
                    self.writeback(victim, cores[c].cycle, mem, units, traffic, reqs);
                }
            }

            // §III-D / Fig 7: stores merge their ECC delta into the covering
            // ECC/XOR cacheline at write time.
            if r.is_write && has_ecc {
                let eaddr = cfg
                    .scheme
                    .ecc_line_of(phys64)
                    .expect("non-inline scheme has ECC lines");
                let out2 = llc.access(eaddr, true);
                // Allocation needs no memory fill: XOR cachelines start as a
                // zero delta; LOT/Multi ECC cachelines are modeled per the
                // paper as write-only-on-evict.
                if let Some(victim) = out2.writeback {
                    self.writeback(victim, cores[c].cycle, mem, units, traffic, reqs);
                }
            }
        }
    }

    fn writeback(
        &self,
        tag: u64,
        now: u64,
        mem: &mut MemorySystem,
        units: u64,
        traffic: &mut TrafficCounters,
        reqs: &mut u64,
    ) {
        if tag >= FAULTY_ECC_REGION_BASE {
            // Step D flush: write the updated ECC line of a faulty bank.
            mem.submit(MemRequest {
                line_addr: tag,
                is_write: true,
                arrival: now,
            });
            *reqs += 1;
            traffic.faulty_ecc_units += 1;
        } else if tag >= XOR_REGION_BASE {
            // Parity-line read-modify-write (equation (1) flush). Both halves
            // are submitted at eviction time; the bank serializes them.
            mem.submit(MemRequest {
                line_addr: tag,
                is_write: false,
                arrival: now,
            });
            mem.submit(MemRequest {
                line_addr: tag,
                is_write: true,
                arrival: now,
            });
            *reqs += 2;
            traffic.ecc_read_units += 1;
            traffic.ecc_write_units += 1;
        } else if tag >= ECC_REGION_BASE {
            // LOT-ECC / Multi-ECC ECC-line eviction: one write.
            mem.submit(MemRequest {
                line_addr: tag,
                is_write: true,
                arrival: now,
            });
            *reqs += 1;
            traffic.ecc_write_units += 1;
        } else {
            mem.submit(MemRequest {
                line_addr: tag,
                is_write: true,
                arrival: now,
            });
            *reqs += 1;
            traffic.data_write_units += units;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{SchemeId, SystemScale};

    fn quick(scheme: SchemeId, workload: &str) -> RunResult {
        let built = SchemeConfig::build(scheme, SystemScale::QuadEquivalent);
        let line_bytes = built.mem.line_bytes;
        let cfg = RunConfig {
            scheme: built,
            workload: WorkloadSpec::lookup(workload).unwrap_or_else(|e| panic!("{e}")),
            cores: 4,
            warmup_per_core: 4_000,
            accesses_per_core: 8_000,
            seed: 1,
            core_config: CoreConfig::default(),
            // 256KB LLC: creates eviction pressure at test-sized runs.
            llc: Some(LlcConfig {
                capacity_bytes: 256 * 1024,
                ways: 16,
                line_bytes,
            }),
            degraded: None,
            per_core_workloads: None,
            trace: None,
        };
        SimRunner::new(cfg).run()
    }

    #[test]
    fn run_produces_consistent_counters() {
        let r = quick(SchemeId::Ck18, "mcf");
        assert!(r.instructions > 0);
        assert!(r.cycles > 0);
        assert!(r.traffic.data_read_units > 0);
        assert!(r.energy.total_pj() > 0.0);
        assert!(r.epi_pj() > 0.0);
        assert!((r.epi_pj() - (r.dynamic_epi_pj() + r.background_epi_pj())).abs() < 1e-9);
        // inline scheme: zero ECC traffic
        assert_eq!(r.traffic.ecc_read_units, 0);
        assert_eq!(r.traffic.ecc_write_units, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(SchemeId::Lot5Parity, "milc");
        let b = quick(SchemeId::Lot5Parity, "milc");
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.energy, b.energy);
    }

    #[test]
    fn parity_scheme_produces_xor_rmw_traffic() {
        let r = quick(SchemeId::Lot5Parity, "lbm");
        assert!(
            r.traffic.ecc_read_units > 0,
            "XOR evictions read the parity"
        );
        assert_eq!(
            r.traffic.ecc_read_units, r.traffic.ecc_write_units,
            "each XOR eviction is one read + one write"
        );
    }

    #[test]
    fn lotecc_scheme_produces_write_only_ecc_traffic() {
        let r = quick(SchemeId::Lot5, "lbm");
        assert!(r.traffic.ecc_write_units > 0);
        assert_eq!(r.traffic.ecc_read_units, 0, "LOT-ECC evictions only write");
    }

    fn quick_paper_llc(scheme: SchemeId, workload: &str) -> RunResult {
        // Full-size (8MB) LLC so hot sets fit, as in the paper.
        let cfg = RunConfig {
            cores: 4,
            warmup_per_core: 4_000,
            accesses_per_core: 8_000,
            seed: 1,
            ..RunConfig::paper(
                SchemeConfig::build(scheme, SystemScale::QuadEquivalent),
                WorkloadSpec::lookup(workload).unwrap_or_else(|e| panic!("{e}")),
            )
        };
        SimRunner::new(cfg).run()
    }

    #[test]
    fn trace_replay_reproduces_live_run_exactly() {
        use crate::trace::Trace;
        // Record the generator streams, then replay them: every metric must
        // be identical to the live run with the same seed.
        let w = WorkloadSpec::by_name("soplex").unwrap();
        let built = SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent);
        let mut live_cfg = RunConfig::paper(built.clone(), w);
        live_cfg.cores = 3;
        live_cfg.warmup_per_core = 1_000;
        live_cfg.accesses_per_core = 3_000;
        let live = SimRunner::new(live_cfg.clone()).run();

        let trace = Trace::record(w, 3, 4_000, live_cfg.seed);
        let mut replay_cfg = live_cfg;
        replay_cfg.trace = Some(trace);
        let replay = SimRunner::new(replay_cfg).run();

        assert_eq!(live.cycles, replay.cycles);
        assert_eq!(live.traffic, replay.traffic);
        assert_eq!(live.energy, replay.energy);
        assert_eq!(live.instructions, replay.instructions);
    }

    #[test]
    fn degraded_mode_adds_step_b_and_d_traffic() {
        // A migrated bank pair forces ECC-line reads on application reads
        // (step B) and ECC-line updates on writes (step D); healthy systems
        // see none of it.
        let w = WorkloadSpec::by_name("milc").unwrap();
        let mk = |degraded| {
            let mut cfg = RunConfig::paper(
                SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent),
                w,
            );
            cfg.cores = 2;
            cfg.warmup_per_core = 2_000;
            cfg.accesses_per_core = 6_000;
            cfg.degraded = degraded;
            SimRunner::new(cfg).run()
        };
        let healthy = mk(None);
        let degraded = mk(Some(DegradedConfig {
            channel: 0,
            pair: 0,
        }));
        assert_eq!(healthy.traffic.faulty_ecc_units, 0);
        assert!(
            degraded.traffic.faulty_ecc_units > 0,
            "faulty-pair accesses must fetch ECC lines"
        );
        assert!(
            degraded.cycles >= healthy.cycles,
            "degraded mode cannot be faster"
        );
        // The affected pair is a small slice of the machine: overhead is
        // bounded (paper: 'the steady state behavior ... to be the most
        // expensive step' but still localized).
        assert!(
            (degraded.cycles as f64) < 1.2 * healthy.cycles as f64,
            "one faulty pair must not wreck the system: {} vs {}",
            degraded.cycles,
            healthy.cycles
        );
    }

    #[test]
    fn memory_intensive_workload_uses_more_bandwidth() {
        let heavy = quick_paper_llc(SchemeId::Ck18, "lbm");
        let light = quick_paper_llc(SchemeId::Ck18, "sjeng");
        assert!(
            heavy.bandwidth_gbs() > 2.0 * light.bandwidth_gbs(),
            "lbm {} vs sjeng {}",
            heavy.bandwidth_gbs(),
            light.bandwidth_gbs()
        );
    }

    #[test]
    fn lot5_parity_cuts_epi_vs_36dev_for_heavy_workloads() {
        // The headline claim, at reduced scale: big EPI reduction on a
        // memory-intensive workload.
        let ck36 = quick(SchemeId::Ck36, "milc");
        let lot5p = quick(SchemeId::Lot5Parity, "milc");
        let reduction = 1.0 - lot5p.epi_pj() / ck36.epi_pj();
        assert!(
            reduction > 0.30,
            "expected large EPI reduction, got {:.1}%",
            reduction * 100.0
        );
    }

    #[test]
    fn streaming_workload_favors_128b_lines_in_accesses() {
        // streamcluster's spatial locality: ck36 (128B lines) needs fewer
        // total 64B units than a 64B-line scheme only if locality is high;
        // at minimum its *misses* halve.
        let ck36 = quick(SchemeId::Ck36, "streamcluster");
        let ck18 = quick(SchemeId::Ck18, "streamcluster");
        assert!(
            (ck36.llc.misses as f64) < 0.7 * ck18.llc.misses as f64,
            "128B lines must cut misses on streaming: {} vs {}",
            ck36.llc.misses,
            ck18.llc.misses
        );
    }
}
