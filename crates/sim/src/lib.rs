//! # mem-sim — full-system memory simulation
//!
//! Ties the pieces together into the paper's evaluation vehicle: synthetic
//! multi-core workload generators (standing in for the GEM5 + SPEC/PARSEC
//! stack — see DESIGN.md for the substitution argument), a shared 8MB/16-way
//! LLC that also caches ECC and XOR cachelines (§III-D / §IV-C), per-scheme
//! ECC-traffic glue for every organization in Table II, and a bounded-MLP
//! core model (Table I) driving the `dram-sim` timing/power model.
//!
//! Outputs per run: memory energy per instruction (dynamic + background),
//! memory accesses per instruction (in 64B units), bandwidth utilization,
//! and runtime — the quantities behind the paper's Figs 9–17.

pub mod cpu;
pub mod llc;
pub mod runner;
pub mod schemes;
pub mod trace;
pub mod workloads;

pub use cpu::CoreConfig;
pub use llc::{AccessOutcome, Llc, LlcConfig};
pub use runner::{DegradedConfig, RunConfig, RunResult, SimRunner};
pub use schemes::{EccTraffic, SchemeConfig, SchemeId, SystemScale};
pub use trace::{Trace, TraceCursor, TraceEvent};
pub use workloads::{Workload, WorkloadSpec, BIN1, BIN2};
