//! Memory-reference traces: record the synthetic generators' streams to a
//! file, replay them later (or replay traces captured elsewhere — one JSON
//! object per line, so external tools can produce them).
//!
//! A trace pins the *exact* reference stream, making cross-scheme
//! comparisons reproducible byte-for-byte and letting users evaluate the
//! resilience schemes on their own workloads without porting a generator.

use crate::workloads::{MemRef, Workload, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// One recorded reference (line-granular, per core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Issuing core.
    pub core: u32,
    /// 64B-line-granular address within the core's virtual space.
    pub line: u64,
    pub is_write: bool,
    /// Instructions since the core's previous reference.
    pub gap_instr: u32,
}

/// A multi-core reference trace.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Per-core reference streams.
    pub per_core: Vec<Vec<MemRef>>,
}

impl Trace {
    /// Record `refs_per_core` references per core from the synthetic
    /// generator for `spec` (same seeding discipline as the simulator, so a
    /// recorded trace replays identically to a live run).
    pub fn record(spec: WorkloadSpec, cores: usize, refs_per_core: usize, seed: u64) -> Trace {
        let per_core = (0..cores)
            .map(|c| {
                let mut g = Workload::new(spec, seed.wrapping_add(c as u64 * 0x9E37));
                (0..refs_per_core).map(|_| g.next_ref()).collect()
            })
            .collect();
        Trace { per_core }
    }

    pub fn cores(&self) -> usize {
        self.per_core.len()
    }

    pub fn total_refs(&self) -> usize {
        self.per_core.iter().map(Vec::len).sum()
    }

    /// Write as JSON-lines: one [`TraceEvent`] per line, cores interleaved
    /// in stable (core-major) order.
    pub fn save_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        for (core, refs) in self.per_core.iter().enumerate() {
            for r in refs {
                let ev = TraceEvent {
                    core: core as u32,
                    line: r.line,
                    is_write: r.is_write,
                    gap_instr: r.gap_instr,
                };
                serde_json::to_writer(&mut w, &ev)?;
                w.write_all(b"\n")?;
            }
        }
        w.flush()
    }

    /// Read a JSON-lines trace (any core ordering; events of one core must
    /// appear in program order).
    pub fn load_jsonl(path: &Path) -> std::io::Result<Trace> {
        let r = BufReader::new(std::fs::File::open(path)?);
        let mut per_core: Vec<Vec<MemRef>> = vec![];
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let ev: TraceEvent = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            let c = ev.core as usize;
            if per_core.len() <= c {
                per_core.resize_with(c + 1, Vec::new);
            }
            per_core[c].push(MemRef {
                line: ev.line,
                is_write: ev.is_write,
                gap_instr: ev.gap_instr,
            });
        }
        Ok(Trace { per_core })
    }
}

/// A replay cursor over one core's stream. When the trace runs dry it wraps
/// around (steady-state replay), so any measurement length works.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    refs: Vec<MemRef>,
    pos: usize,
}

impl TraceCursor {
    pub fn new(refs: Vec<MemRef>) -> TraceCursor {
        assert!(!refs.is_empty(), "empty trace stream");
        TraceCursor { refs, pos: 0 }
    }

    pub fn next_ref(&mut self) -> MemRef {
        let r = self.refs[self.pos];
        self.pos = (self.pos + 1) % self.refs.len();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_matches_live_generator() {
        let spec = WorkloadSpec::by_name("milc").unwrap();
        let t = Trace::record(spec, 2, 50, 7);
        let mut g = Workload::new(spec, 7);
        for r in &t.per_core[0] {
            assert_eq!(*r, g.next_ref());
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let spec = WorkloadSpec::by_name("sjeng").unwrap();
        let t = Trace::record(spec, 3, 40, 9);
        let dir = std::env::temp_dir().join("eccparity_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        t.save_jsonl(&path).unwrap();
        let back = Trace::load_jsonl(&path).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.cores(), 3);
        assert_eq!(back.total_refs(), 120);
    }

    #[test]
    fn cursor_wraps_around() {
        let refs = vec![
            MemRef {
                line: 1,
                is_write: false,
                gap_instr: 10,
            },
            MemRef {
                line: 2,
                is_write: true,
                gap_instr: 20,
            },
        ];
        let mut c = TraceCursor::new(refs.clone());
        assert_eq!(c.next_ref(), refs[0]);
        assert_eq!(c.next_ref(), refs[1]);
        assert_eq!(c.next_ref(), refs[0], "wraps for steady-state replay");
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("eccparity_trace_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(Trace::load_jsonl(&path).is_err());
    }
}
