//! Core model: Table I parameters and a bounded-MLP trace-driven core.
//!
//! The paper simulates 2-wide out-of-order cores (ROB 64, LSQ 32/32) in
//! GEM5. For memory-system evaluation what matters is (a) how fast the core
//! generates memory traffic between misses and (b) how many misses it can
//! overlap before stalling. We model exactly that: instructions retire at
//! the issue width while the number of outstanding line fills is below the
//! MLP limit; when the limit is hit the core waits for the oldest fill.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Table I microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    pub issue_width: u32,
    pub rob_size: u32,
    pub lq_size: u32,
    pub sq_size: u32,
    pub l1_bytes: usize,
    pub l2_bytes: usize,
    pub l2_ways: usize,
    pub l2_latency: u32,
    /// Outstanding line fills a core can overlap (MSHR/LSQ bound).
    pub mlp: usize,
    /// Clock, GHz (the paper's 2 GHz cores vs the 1 GHz memory clock).
    pub freq_ghz: f64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            issue_width: 2,
            rob_size: 64,
            lq_size: 32,
            sq_size: 32,
            l1_bytes: 32 * 1024,
            l2_bytes: 8 * 1024 * 1024,
            l2_ways: 16,
            l2_latency: 10,
            mlp: 4,
            freq_ghz: 2.0,
        }
    }
}

/// One core's progress, in *memory-clock* cycles (1 GHz) so core time and
/// DRAM completions share a clock domain.
#[derive(Debug)]
pub struct CoreState {
    config: CoreConfig,
    /// Current time in memory cycles.
    pub cycle: u64,
    /// Retired instructions.
    pub instructions: u64,
    outstanding: BinaryHeap<Reverse<u64>>,
}

impl CoreState {
    pub fn new(config: CoreConfig) -> CoreState {
        CoreState {
            config,
            cycle: 0,
            instructions: 0,
            outstanding: BinaryHeap::new(),
        }
    }

    /// Advance time for `gap` instructions of non-miss work.
    pub fn advance_instructions(&mut self, gap: u32) {
        self.instructions += gap as u64;
        // issue_width instructions per core cycle; core runs at
        // freq_ghz x the 1 GHz memory clock.
        let core_cycles = gap as f64 / self.config.issue_width as f64;
        let mem_cycles = core_cycles / self.config.freq_ghz;
        self.cycle += mem_cycles.ceil() as u64;
        self.drain_completed();
    }

    /// Charge an LLC hit (pipelined; a fraction of the latency is exposed).
    pub fn charge_llc_hit(&mut self) {
        self.cycle += (self.config.l2_latency as u64) / 4;
    }

    /// Record a line fill completing at `completion`; stalls the core first
    /// if the MLP window is full.
    pub fn issue_fill(&mut self, completion: u64) {
        self.drain_completed();
        while self.outstanding.len() >= self.config.mlp {
            let Reverse(earliest) = self.outstanding.pop().expect("window nonempty");
            if earliest > self.cycle {
                self.cycle = earliest;
            }
        }
        self.outstanding.push(Reverse(completion));
    }

    /// Retire fills that already completed.
    fn drain_completed(&mut self) {
        while let Some(&Reverse(t)) = self.outstanding.peek() {
            if t <= self.cycle {
                self.outstanding.pop();
            } else {
                break;
            }
        }
    }

    /// Wait for every outstanding fill (end of simulation).
    pub fn drain_all(&mut self) {
        while let Some(Reverse(t)) = self.outstanding.pop() {
            if t > self.cycle {
                self.cycle = t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = CoreConfig::default();
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.rob_size, 64);
        assert_eq!(c.lq_size, 32);
        assert_eq!(c.l2_bytes, 8 * 1024 * 1024);
        assert_eq!(c.l2_ways, 16);
        assert_eq!(c.l2_latency, 10);
    }

    #[test]
    fn instructions_advance_time_at_issue_width() {
        let mut core = CoreState::new(CoreConfig::default());
        core.advance_instructions(400);
        // 400 instr / 2-wide / 2GHz = 100 memory cycles
        assert_eq!(core.cycle, 100);
        assert_eq!(core.instructions, 400);
    }

    #[test]
    fn fills_below_mlp_do_not_stall() {
        let mut core = CoreState::new(CoreConfig::default());
        for i in 0..4 {
            core.issue_fill(1000 + i);
        }
        assert_eq!(core.cycle, 0, "window of 4 absorbs 4 fills");
    }

    #[test]
    fn fifth_fill_stalls_until_oldest_completes() {
        let mut core = CoreState::new(CoreConfig::default());
        for i in 0..4u64 {
            core.issue_fill(100 + i * 10);
        }
        core.issue_fill(500);
        assert_eq!(core.cycle, 100, "stall to the earliest completion");
    }

    #[test]
    fn completed_fills_free_window_slots() {
        let mut core = CoreState::new(CoreConfig::default());
        core.issue_fill(10);
        core.issue_fill(20);
        core.advance_instructions(200); // time 50: both fills done
        core.issue_fill(999);
        core.issue_fill(999);
        core.issue_fill(999);
        core.issue_fill(999);
        assert_eq!(core.cycle, 50, "drained window absorbs four more");
    }

    #[test]
    fn drain_all_waits_for_last_fill() {
        let mut core = CoreState::new(CoreConfig::default());
        core.issue_fill(777);
        core.drain_all();
        assert_eq!(core.cycle, 777);
    }
}
