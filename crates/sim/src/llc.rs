//! Last-level cache model: 8MB, 16-way, LRU (Table I), shared by eight
//! cores, caching data lines *and* the ECC-related lines of §III-D/§IV-C.
//!
//! ECC and XOR cachelines take addresses in a disjoint region of the
//! physical space and are "treated the same way as data cachelines in terms
//! of LLC insertion and replacement policies" (paper §IV-C) — so they are
//! ordinary entries here; only the scheme glue interprets them.

use serde::{Deserialize, Serialize};

/// LLC geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcConfig {
    pub capacity_bytes: usize,
    pub ways: usize,
    pub line_bytes: usize,
}

impl LlcConfig {
    /// Table I: 8MB, 16-way. Line size follows the memory line size of the
    /// evaluated organization (64B; 128B for 36-device chipkill and RAIM).
    pub fn paper(line_bytes: usize) -> LlcConfig {
        LlcConfig {
            capacity_bytes: 8 * 1024 * 1024,
            ways: 16,
            line_bytes,
        }
    }

    pub fn sets(&self) -> usize {
        self.capacity_bytes / self.line_bytes / self.ways
    }
}

/// What an access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    pub hit: bool,
    /// Dirty victim evicted by the fill (tag address), if any.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcStats {
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
}

/// The cache. Addresses are line-granular in units of `line_bytes`.
///
/// Ways are stored as one flat array (`set * ways + way`) rather than a
/// vec-of-vecs: the per-access set lookup is then a mask plus one offset
/// with no second pointer chase, and a set's ways share cache lines.
pub struct Llc {
    config: LlcConfig,
    ways: Vec<Way>,
    ways_per_set: usize,
    /// `nsets - 1`; set count is asserted to be a power of two.
    set_mask: u64,
    clock: u64,
    stats: LlcStats,
}

impl Llc {
    pub fn new(config: LlcConfig) -> Llc {
        let nsets = config.sets();
        assert!(nsets.is_power_of_two(), "set count must be a power of two");
        Llc {
            config,
            ways: vec![Way::default(); config.ways * nsets],
            ways_per_set: config.ways,
            set_mask: nsets as u64 - 1,
            clock: 0,
            stats: LlcStats::default(),
        }
    }

    pub fn config(&self) -> &LlcConfig {
        &self.config
    }

    pub fn stats(&self) -> &LlcStats {
        &self.stats
    }

    fn set_base(&self, line: u64) -> usize {
        (line & self.set_mask) as usize * self.ways_per_set
    }

    /// Access `line`; on miss, fill it (write-allocate). Returns hit status
    /// and any dirty victim.
    pub fn access(&mut self, line: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let base = self.set_base(line);
        let ways = &mut self.ways[base..base + self.ways_per_set];
        let tag = line;
        // hit?
        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                w.lru = self.clock;
                w.dirty |= is_write;
                self.stats.hits += 1;
                return AccessOutcome {
                    hit: true,
                    writeback: None,
                };
            }
        }
        self.stats.misses += 1;
        // victim: invalid way or LRU
        let mut victim = 0;
        let mut best = u64::MAX;
        for (i, w) in ways.iter().enumerate() {
            if !w.valid {
                victim = i;
                break;
            }
            if w.lru < best {
                best = w.lru;
                victim = i;
            }
        }
        let v = &mut ways[victim];
        let writeback = if v.valid && v.dirty {
            self.stats.writebacks += 1;
            Some(v.tag)
        } else {
            None
        };
        *v = Way {
            valid: true,
            dirty: is_write,
            tag,
            lru: self.clock,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Probe without modifying state (used by tests).
    pub fn contains(&self, line: u64) -> bool {
        let base = self.set_base(line);
        self.ways[base..base + self.ways_per_set]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }

    /// Drain every dirty line (end-of-simulation flush). Returns their tags.
    pub fn flush_dirty(&mut self) -> Vec<u64> {
        let mut out = vec![];
        for w in &mut self.ways {
            if w.valid && w.dirty {
                out.push(w.tag);
                w.dirty = false;
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Llc {
        // 64 sets x 4 ways x 64B = 16KB
        Llc::new(LlcConfig {
            capacity_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        })
    }

    #[test]
    fn paper_geometry() {
        let c = LlcConfig::paper(64);
        assert_eq!(c.sets(), 8192);
        let c = LlcConfig::paper(128);
        assert_eq!(c.sets(), 4096);
    }

    #[test]
    fn hit_after_fill() {
        let mut l = small();
        assert!(!l.access(100, false).hit);
        assert!(l.access(100, false).hit);
        assert_eq!(l.stats().hits, 1);
        assert_eq!(l.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut l = small();
        let sets = l.config().sets() as u64;
        // Fill one set (4 ways) then overflow it.
        for i in 0..4u64 {
            l.access(7 + i * sets, false);
        }
        l.access(7, false); // touch first: now way with tag 7+sets is LRU
        l.access(7 + 4 * sets, false); // evicts 7+sets
        assert!(l.contains(7));
        assert!(!l.contains(7 + sets));
        assert!(l.contains(7 + 4 * sets));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut l = small();
        let sets = l.config().sets() as u64;
        l.access(3, true); // dirty
        for i in 1..=4u64 {
            let out = l.access(3 + i * sets, false);
            if i < 4 {
                assert_eq!(out.writeback, None);
            } else {
                assert_eq!(out.writeback, Some(3), "dirty LRU victim must write back");
            }
        }
        assert_eq!(l.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut l = small();
        l.access(9, false);
        l.access(9, true); // hit, dirtied
        let dirty = l.flush_dirty();
        assert_eq!(dirty, vec![9]);
    }

    #[test]
    fn flush_dirty_clears_state() {
        let mut l = small();
        l.access(1, true);
        l.access(2, true);
        assert_eq!(l.flush_dirty().len(), 2);
        assert_eq!(l.flush_dirty().len(), 0);
    }
}
