//! The evaluated memory resilience organizations (paper Table II) and their
//! ECC-update traffic behaviour (paper §IV-C).
//!
//! Every organization is normalized to the same total physical memory
//! bandwidth and size as a dual- or quad-channel *commercial ECC* system:
//! 576 total I/O pins for the chipkill family at quad-equivalent scale
//! (288 at dual), 720/360 for the RAIM family.
//!
//! ECC-update traffic classes:
//!
//! * **Inline** — redundancy travels with the line (36/18-device chipkill,
//!   RAIM): no overhead requests.
//! * **EccLines** — correction bits live in ECC lines in data memory
//!   (LOT-ECC, Multi-ECC): each ECC cacheline covers `coverage` logically
//!   adjacent data lines, is updated in the LLC on stores, and costs one
//!   memory *write* on eviction.
//! * **XorParity** — the ECC Parity schemes: each XOR cacheline covers the
//!   same `quad` adjacent lines in `N-1` logically adjacent pages; eviction
//!   costs one parity-line *read* plus one *write* (the read-modify-write
//!   of equation (1), amortized by the §III-D compaction).

use dram_sim::{DeviceKind, MemoryConfig, RankConfig};
use ecc_codes::OverheadModel;
use serde::{Deserialize, Serialize};

/// Line-address region bases (in line units) for ECC-related cachelines.
/// Data addresses stay far below these.
pub const ECC_REGION_BASE: u64 = 1 << 42;
pub const XOR_REGION_BASE: u64 = 1 << 43;

/// Lines per 4KB page at 64B granularity.
const LINES_PER_PAGE: u64 = 64;

/// The eight evaluated organizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeId {
    Ck36,
    Ck18,
    Lot5,
    Lot9,
    MultiEcc,
    Lot5Parity,
    Raim,
    RaimParity,
}

impl SchemeId {
    pub const ALL: [SchemeId; 8] = [
        SchemeId::Ck36,
        SchemeId::Ck18,
        SchemeId::Lot5,
        SchemeId::Lot9,
        SchemeId::MultiEcc,
        SchemeId::Lot5Parity,
        SchemeId::Raim,
        SchemeId::RaimParity,
    ];

    /// The chipkill-correct family (pin-equivalent to commercial chipkill).
    pub const CHIPKILL: [SchemeId; 6] = [
        SchemeId::Ck36,
        SchemeId::Ck18,
        SchemeId::Lot5,
        SchemeId::Lot9,
        SchemeId::MultiEcc,
        SchemeId::Lot5Parity,
    ];

    /// The DIMM-kill family.
    pub const DIMMKILL: [SchemeId; 2] = [SchemeId::Raim, SchemeId::RaimParity];
}

/// System scale: equivalent in physical bandwidth/size to a dual- or
/// quad-channel commercial ECC memory system (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemScale {
    DualEquivalent,
    QuadEquivalent,
}

/// ECC-update traffic class (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EccTraffic {
    Inline,
    EccLines { coverage: u64 },
    XorParity { quad: u64 },
}

/// One fully-specified organization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeConfig {
    pub id: SchemeId,
    pub name: &'static str,
    pub traffic: EccTraffic,
    pub mem: MemoryConfig,
    /// Static memory capacity overhead (Table III).
    pub capacity_overhead: f64,
}

impl SchemeConfig {
    /// Build one organization at one scale (Table II row).
    pub fn build(id: SchemeId, scale: SystemScale) -> SchemeConfig {
        let half = matches!(scale, SystemScale::DualEquivalent);
        let ch = |quad: usize| if half { quad / 2 } else { quad };
        match id {
            SchemeId::Ck36 => SchemeConfig {
                id,
                name: "36-device commercial chipkill",
                traffic: EccTraffic::Inline,
                mem: MemoryConfig::new(ch(4), 1, RankConfig::uniform(DeviceKind::X4, 36), 128),
                capacity_overhead: 0.125,
            },
            SchemeId::Ck18 => SchemeConfig {
                id,
                name: "18-device commercial chipkill",
                traffic: EccTraffic::Inline,
                mem: MemoryConfig::new(ch(8), 1, RankConfig::uniform(DeviceKind::X4, 18), 64),
                capacity_overhead: 0.125,
            },
            SchemeId::Lot5 => SchemeConfig {
                id,
                name: "LOT-ECC5",
                traffic: EccTraffic::EccLines { coverage: 4 },
                mem: MemoryConfig::new(ch(8), 4, RankConfig::lotecc5(), 64),
                capacity_overhead: 0.40625,
            },
            SchemeId::Lot9 => SchemeConfig {
                id,
                name: "LOT-ECC9",
                traffic: EccTraffic::EccLines { coverage: 8 },
                mem: MemoryConfig::new(ch(8), 2, RankConfig::uniform(DeviceKind::X8, 9), 64),
                capacity_overhead: 0.265625,
            },
            SchemeId::MultiEcc => SchemeConfig {
                id,
                name: "Multi-ECC",
                // Multi-ECC's multi-line code lets one ECC cacheline cover a
                // wider span than LOT-ECC9's ([13]); this is why its update
                // traffic (and EPI) edges out LOT-ECC9 in Figs 10/16.
                traffic: EccTraffic::EccLines { coverage: 16 },
                mem: MemoryConfig::new(ch(8), 2, RankConfig::uniform(DeviceKind::X8, 9), 64),
                capacity_overhead: 0.129,
            },
            SchemeId::Lot5Parity => {
                let channels = ch(8);
                SchemeConfig {
                    id,
                    name: "LOT-ECC5 + ECC Parity",
                    traffic: EccTraffic::XorParity { quad: 4 },
                    mem: MemoryConfig::new(channels, 4, RankConfig::lotecc5(), 64),
                    capacity_overhead: OverheadModel::ecc_parity(0.25, channels).total(),
                }
            }
            SchemeId::Raim => SchemeConfig {
                id,
                name: "RAIM",
                traffic: EccTraffic::Inline,
                mem: MemoryConfig::new(ch(4), 1, RankConfig::uniform(DeviceKind::X4, 45), 128),
                capacity_overhead: 0.40625,
            },
            SchemeId::RaimParity => {
                let channels = ch(10);
                SchemeConfig {
                    id,
                    name: "RAIM + ECC Parity",
                    traffic: EccTraffic::XorParity { quad: 4 },
                    mem: MemoryConfig::new(
                        channels,
                        1,
                        RankConfig::uniform(DeviceKind::X4, 18),
                        64,
                    ),
                    capacity_overhead: OverheadModel::ecc_parity(0.5, channels).total(),
                }
            }
        }
    }

    /// All eight organizations at a scale.
    pub fn all(scale: SystemScale) -> Vec<SchemeConfig> {
        SchemeId::ALL
            .iter()
            .map(|&id| Self::build(id, scale))
            .collect()
    }

    /// Address of the ECC/XOR cacheline covering 64B data line `line64`, or
    /// `None` for inline schemes. Addresses land in the reserved regions.
    pub fn ecc_line_of(&self, line64: u64) -> Option<u64> {
        match self.traffic {
            EccTraffic::Inline => None,
            EccTraffic::EccLines { coverage } => Some(ECC_REGION_BASE + line64 / coverage),
            EccTraffic::XorParity { quad } => {
                let n1 = (self.mem.channels - 1) as u64;
                let page = line64 / LINES_PER_PAGE;
                let in_page = line64 % LINES_PER_PAGE;
                let quads_per_page = LINES_PER_PAGE / quad;
                let page_group = page / n1;
                Some(XOR_REGION_BASE + page_group * quads_per_page + in_page / quad)
            }
        }
    }

    /// Data lines covered by one ECC/XOR cacheline (drives its LLC hit rate).
    pub fn ecc_coverage(&self) -> u64 {
        match self.traffic {
            EccTraffic::Inline => 0,
            EccTraffic::EccLines { coverage } => coverage,
            EccTraffic::XorParity { quad } => quad * (self.mem.channels - 1) as u64,
        }
    }

    /// 64B units per memory line access (Fig 16's counting rule).
    pub fn units_per_access(&self) -> u64 {
        (self.mem.line_bytes / 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_logical_channels() {
        let quad = |id| {
            SchemeConfig::build(id, SystemScale::QuadEquivalent)
                .mem
                .channels
        };
        let dual = |id| {
            SchemeConfig::build(id, SystemScale::DualEquivalent)
                .mem
                .channels
        };
        assert_eq!((quad(SchemeId::Ck36), dual(SchemeId::Ck36)), (4, 2));
        assert_eq!((quad(SchemeId::Ck18), dual(SchemeId::Ck18)), (8, 4));
        assert_eq!((quad(SchemeId::Lot5), dual(SchemeId::Lot5)), (8, 4));
        assert_eq!((quad(SchemeId::Lot9), dual(SchemeId::Lot9)), (8, 4));
        assert_eq!((quad(SchemeId::MultiEcc), dual(SchemeId::MultiEcc)), (8, 4));
        assert_eq!(
            (quad(SchemeId::Lot5Parity), dual(SchemeId::Lot5Parity)),
            (8, 4)
        );
        assert_eq!((quad(SchemeId::Raim), dual(SchemeId::Raim)), (4, 2));
        assert_eq!(
            (quad(SchemeId::RaimParity), dual(SchemeId::RaimParity)),
            (10, 5)
        );
    }

    #[test]
    fn table2_pin_counts() {
        for scale in [SystemScale::QuadEquivalent, SystemScale::DualEquivalent] {
            let target_ck = match scale {
                SystemScale::QuadEquivalent => 576,
                SystemScale::DualEquivalent => 288,
            };
            for id in SchemeId::CHIPKILL {
                let c = SchemeConfig::build(id, scale);
                assert_eq!(c.mem.total_pins(), target_ck, "{:?} {:?}", id, scale);
            }
            let target_raim = match scale {
                SystemScale::QuadEquivalent => 720,
                SystemScale::DualEquivalent => 360,
            };
            for id in SchemeId::DIMMKILL {
                let c = SchemeConfig::build(id, scale);
                assert_eq!(c.mem.total_pins(), target_raim, "{:?} {:?}", id, scale);
            }
        }
    }

    #[test]
    fn table2_ranks_and_line_sizes() {
        let q = |id| SchemeConfig::build(id, SystemScale::QuadEquivalent);
        assert_eq!(q(SchemeId::Ck36).mem.line_bytes, 128);
        assert_eq!(q(SchemeId::Raim).mem.line_bytes, 128);
        assert_eq!(q(SchemeId::Lot5).mem.line_bytes, 64);
        assert_eq!(q(SchemeId::Lot5).mem.ranks_per_channel, 4);
        assert_eq!(q(SchemeId::Lot9).mem.ranks_per_channel, 2);
        assert_eq!(q(SchemeId::Ck36).mem.ranks_per_channel, 1);
        assert_eq!(q(SchemeId::Raim).mem.rank.chips(), 45);
    }

    #[test]
    fn ecc_line_addresses_land_in_reserved_regions() {
        let lot5 = SchemeConfig::build(SchemeId::Lot5, SystemScale::QuadEquivalent);
        let a = lot5.ecc_line_of(1234).unwrap();
        assert!((ECC_REGION_BASE..XOR_REGION_BASE).contains(&a));
        let par = SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent);
        let x = par.ecc_line_of(1234).unwrap();
        assert!(x >= XOR_REGION_BASE);
        let ck = SchemeConfig::build(SchemeId::Ck36, SystemScale::QuadEquivalent);
        assert_eq!(ck.ecc_line_of(1234), None);
    }

    #[test]
    fn xor_cacheline_covers_quad_times_n_minus_1() {
        // Quad-equivalent LOT5+Parity: 8 channels -> 4 * 7 = 28 lines/XOR line.
        let q = SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent);
        assert_eq!(q.ecc_coverage(), 28);
        // Dual-equivalent: 4 channels -> 12 lines: fewer, so more evictions —
        // the paper's Fig 17 explanation.
        let d = SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::DualEquivalent);
        assert_eq!(d.ecc_coverage(), 12);
    }

    #[test]
    fn xor_mapping_groups_adjacent_pages() {
        let q = SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::QuadEquivalent);
        let n1 = 7u64;
        // Same quad of lines in adjacent pages within one group share the
        // XOR cacheline.
        let base = q.ecc_line_of(0).unwrap();
        for p in 0..n1 {
            assert_eq!(q.ecc_line_of(p * 64).unwrap(), base);
            assert_eq!(q.ecc_line_of(p * 64 + 3).unwrap(), base);
        }
        // Next quad -> different XOR line; next page group -> different line.
        assert_ne!(q.ecc_line_of(4).unwrap(), base);
        assert_ne!(q.ecc_line_of(n1 * 64).unwrap(), base);
    }

    #[test]
    fn capacity_overheads_match_table3() {
        let q = |id| SchemeConfig::build(id, SystemScale::QuadEquivalent).capacity_overhead;
        assert!((q(SchemeId::Lot5Parity) - 0.1652).abs() < 1e-3); // 8 chan: 16.5%
        assert!((q(SchemeId::RaimParity) - 0.1875).abs() < 1e-9); // 10 chan: 18.8%
        let d = |id| SchemeConfig::build(id, SystemScale::DualEquivalent).capacity_overhead;
        assert!((d(SchemeId::Lot5Parity) - 0.21875).abs() < 1e-9); // 4 chan: 21.9%
        assert!((d(SchemeId::RaimParity) - 0.265625).abs() < 1e-9); // 5 chan: 26.6%
    }
}
