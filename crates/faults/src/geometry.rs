//! Memory-system geometry: how channels, ranks, chips, and banks compose.
//!
//! The reliability analyses in the paper fix one geometry — "an
//! eight-channel system with four ranks per channel and nine chips per
//! rank" (Figs 2, 8, 18) — but the types here are general and are shared
//! by the DRAM simulator configuration.

use serde::{Deserialize, Serialize};

/// Static shape of a multi-channel memory system for reliability analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemGeometry {
    /// Logical channels (the unit that shares ECC parities).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// DRAM devices per rank.
    pub chips_per_rank: usize,
    /// Banks per DRAM device (8 for DDR3).
    pub banks_per_chip: usize,
}

impl SystemGeometry {
    /// The paper's reliability-figure geometry: 8 channels x 4 ranks x 9
    /// chips, DDR3 (8 banks).
    pub fn paper_reliability() -> Self {
        SystemGeometry {
            channels: 8,
            ranks_per_channel: 4,
            chips_per_rank: 9,
            banks_per_chip: 8,
        }
    }

    /// Same shape with a different channel count (Fig 8 sweeps channels).
    pub fn with_channels(self, channels: usize) -> Self {
        SystemGeometry { channels, ..self }
    }

    /// Devices per channel.
    pub fn chips_per_channel(&self) -> usize {
        self.ranks_per_channel * self.chips_per_rank
    }

    /// Devices in the whole system.
    pub fn total_chips(&self) -> usize {
        self.channels * self.chips_per_channel()
    }

    /// Logical banks per channel: every rank contributes `banks_per_chip`
    /// (all chips of a rank operate in lockstep, so a "bank" spans the rank).
    pub fn banks_per_channel(&self) -> usize {
        self.ranks_per_channel * self.banks_per_chip
    }

    /// Bank *pairs* per channel — the paper's health-tracking granularity.
    pub fn bank_pairs_per_channel(&self) -> usize {
        self.banks_per_channel() / 2
    }

    /// Bank pairs in the whole system.
    pub fn total_bank_pairs(&self) -> usize {
        self.channels * self.bank_pairs_per_channel()
    }

    /// Fraction of system capacity held by one bank pair.
    pub fn bank_pair_fraction(&self) -> f64 {
        1.0 / self.total_bank_pairs() as f64
    }
}

/// Identifies one DRAM device in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChipLocation {
    pub channel: usize,
    pub rank: usize,
    pub chip: usize,
}

impl ChipLocation {
    /// Enumerate every device of a geometry, channel-major.
    pub fn enumerate(geo: &SystemGeometry) -> impl Iterator<Item = ChipLocation> + '_ {
        (0..geo.channels).flat_map(move |channel| {
            (0..geo.ranks_per_channel).flat_map(move |rank| {
                (0..geo.chips_per_rank).map(move |chip| ChipLocation {
                    channel,
                    rank,
                    chip,
                })
            })
        })
    }

    /// Flat index of this device, channel-major.
    pub fn index(&self, geo: &SystemGeometry) -> usize {
        (self.channel * geo.ranks_per_channel + self.rank) * geo.chips_per_rank + self.chip
    }

    /// Inverse of [`ChipLocation::index`].
    pub fn from_index(geo: &SystemGeometry, idx: usize) -> ChipLocation {
        let chip = idx % geo.chips_per_rank;
        let rr = idx / geo.chips_per_rank;
        let rank = rr % geo.ranks_per_channel;
        let channel = rr / geo.ranks_per_channel;
        ChipLocation {
            channel,
            rank,
            chip,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_counts() {
        let g = SystemGeometry::paper_reliability();
        assert_eq!(g.chips_per_channel(), 36);
        assert_eq!(g.total_chips(), 288);
        assert_eq!(g.banks_per_channel(), 32);
        assert_eq!(g.bank_pairs_per_channel(), 16);
        assert_eq!(g.total_bank_pairs(), 128);
        assert!((g.bank_pair_fraction() - 1.0 / 128.0).abs() < 1e-15);
    }

    #[test]
    fn chip_index_roundtrip() {
        let g = SystemGeometry::paper_reliability();
        for (i, loc) in ChipLocation::enumerate(&g).enumerate() {
            assert_eq!(loc.index(&g), i);
            assert_eq!(ChipLocation::from_index(&g, i), loc);
        }
        assert_eq!(ChipLocation::enumerate(&g).count(), g.total_chips());
    }

    #[test]
    fn with_channels_rescales() {
        let g = SystemGeometry::paper_reliability().with_channels(2);
        assert_eq!(g.total_chips(), 72);
        assert_eq!(g.total_bank_pairs(), 32);
    }
}
