//! DRAM device fault modes and field failure-rate (FIT) tables.
//!
//! Fault modes follow the taxonomy of the field studies the paper cites
//! (\[20\], \[21\]): a fault is confined to one DRAM device and affects a
//! single bit, word, column, row, bank, multiple banks, or multiple
//! ranks'-worth of the device's array ("multi-rank" faults are shared-
//! circuitry faults that corrupt the same device position across ranks; we
//! model them device-local but whole-device, the pessimistic choice).
//!
//! FIT values (failures per 10^9 device-hours) are calibrated to the
//! published DDR3 vendor-average **total of ~44 FIT/chip** \[21\] with a
//! large-fault share that reproduces the paper's Fig. 8 result (~0.4% of
//! memory migrates to stored correction bits over a 7-year lifetime).

use serde::{Deserialize, Serialize};

/// Hours in a (non-leap) year; used for FIT → lifetime conversions.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// The paper's server lifetime assumption (§III-E, §VI-C): seven years.
pub const LIFETIME_YEARS: f64 = 7.0;

/// Device-level DRAM fault modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultMode {
    /// One cell flips (transient or stuck).
    SingleBit,
    /// One device word (a burst's worth of bits) is bad.
    SingleWord,
    /// One column of one bank: errors appear in many rows (many pages).
    SingleColumn,
    /// One row of one bank: errors confined to one page worth of lines.
    SingleRow,
    /// A whole bank of the device.
    SingleBank,
    /// Several banks of the device (shared-circuitry fault).
    MultiBank,
    /// Device-wide fault visible across ranks sharing the device's I/O.
    MultiRank,
}

impl FaultMode {
    /// All modes, smallest to largest footprint.
    pub const ALL: [FaultMode; 7] = [
        FaultMode::SingleBit,
        FaultMode::SingleWord,
        FaultMode::SingleColumn,
        FaultMode::SingleRow,
        FaultMode::SingleBank,
        FaultMode::MultiBank,
        FaultMode::MultiRank,
    ];

    /// "Large" faults are those whose error counts saturate a bank-pair
    /// error counter (threshold 4, §III-C) and therefore cause migration to
    /// stored ECC correction bits; §VI-B lists them: column, bank,
    /// multi-bank, multi-rank. Bit/word/row faults are absorbed by page
    /// retirement.
    pub fn is_large(self) -> bool {
        matches!(
            self,
            FaultMode::SingleColumn
                | FaultMode::SingleBank
                | FaultMode::MultiBank
                | FaultMode::MultiRank
        )
    }

    /// How many bank *pairs* of the containing channel a large fault marks
    /// faulty (given `banks_per_chip` banks per device, paired off).
    /// Small faults mark none. Multi-rank (shared-I/O) faults corrupt the
    /// device's banks in both ranks sharing its lanes: two ranks' worth of
    /// pairs.
    pub fn bank_pairs_marked(self, banks_per_chip: usize) -> usize {
        match self {
            FaultMode::SingleBit | FaultMode::SingleWord | FaultMode::SingleRow => 0,
            FaultMode::SingleColumn | FaultMode::SingleBank => 1,
            FaultMode::MultiBank => 2,
            FaultMode::MultiRank => banks_per_chip,
        }
    }
}

/// Per-mode FIT rates for one DRAM device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitTable {
    pub single_bit: f64,
    pub single_word: f64,
    pub single_column: f64,
    pub single_row: f64,
    pub single_bank: f64,
    pub multi_bank: f64,
    pub multi_rank: f64,
}

impl FitTable {
    /// Vendor-average DDR3 rates (total 44 FIT/chip, \[21\]); the split is
    /// documented in the module docs.
    pub const DDR3_AVERAGE: FitTable = FitTable {
        single_bit: 22.0,
        single_word: 1.5,
        single_column: 4.0,
        single_row: 5.0,
        single_bank: 8.0,
        multi_bank: 1.5,
        multi_rank: 2.0,
    };

    /// Total FIT per device.
    pub fn total(&self) -> f64 {
        self.single_bit
            + self.single_word
            + self.single_column
            + self.single_row
            + self.single_bank
            + self.multi_bank
            + self.multi_rank
    }

    /// FIT of one mode.
    pub fn rate(&self, mode: FaultMode) -> f64 {
        match mode {
            FaultMode::SingleBit => self.single_bit,
            FaultMode::SingleWord => self.single_word,
            FaultMode::SingleColumn => self.single_column,
            FaultMode::SingleRow => self.single_row,
            FaultMode::SingleBank => self.single_bank,
            FaultMode::MultiBank => self.multi_bank,
            FaultMode::MultiRank => self.multi_rank,
        }
    }

    /// Total FIT of the large (migration-causing) modes.
    pub fn large_total(&self) -> f64 {
        FaultMode::ALL
            .iter()
            .filter(|m| m.is_large())
            .map(|&m| self.rate(m))
            .sum()
    }

    /// Scale every mode so the table totals `target_fit` (used for the
    /// FIT-rate sweeps in Figs 2 and 18).
    pub fn scaled_to(&self, target_fit: f64) -> FitTable {
        let k = target_fit / self.total();
        FitTable {
            single_bit: self.single_bit * k,
            single_word: self.single_word * k,
            single_column: self.single_column * k,
            single_row: self.single_row * k,
            single_bank: self.single_bank * k,
            multi_bank: self.multi_bank * k,
            multi_rank: self.multi_rank * k,
        }
    }

    /// Events per device-hour (FIT is per 10^9 device-hours).
    pub fn events_per_hour(&self) -> f64 {
        self.total() * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_average_totals_44() {
        assert!((FitTable::DDR3_AVERAGE.total() - 44.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_table_preserves_ratios() {
        let t = FitTable::DDR3_AVERAGE.scaled_to(100.0);
        assert!((t.total() - 100.0).abs() < 1e-9);
        let base = FitTable::DDR3_AVERAGE;
        assert!((t.single_bank / t.single_bit - base.single_bank / base.single_bit).abs() < 1e-12);
    }

    #[test]
    fn large_fault_classification_matches_section6b() {
        assert!(!FaultMode::SingleBit.is_large());
        assert!(!FaultMode::SingleWord.is_large());
        assert!(!FaultMode::SingleRow.is_large());
        assert!(FaultMode::SingleColumn.is_large());
        assert!(FaultMode::SingleBank.is_large());
        assert!(FaultMode::MultiBank.is_large());
        assert!(FaultMode::MultiRank.is_large());
    }

    #[test]
    fn bank_pairs_marked_monotone_in_mode_size() {
        let b = 8;
        assert_eq!(FaultMode::SingleRow.bank_pairs_marked(b), 0);
        assert!(
            FaultMode::SingleBank.bank_pairs_marked(b) <= FaultMode::MultiBank.bank_pairs_marked(b)
        );
        assert!(
            FaultMode::MultiBank.bank_pairs_marked(b) <= FaultMode::MultiRank.bank_pairs_marked(b)
        );
        assert_eq!(FaultMode::MultiRank.bank_pairs_marked(b), 8);
    }

    #[test]
    fn rate_lookup_consistent_with_fields() {
        let t = FitTable::DDR3_AVERAGE;
        let sum: f64 = FaultMode::ALL.iter().map(|&m| t.rate(m)).sum();
        assert!((sum - t.total()).abs() < 1e-12);
    }

    #[test]
    fn events_per_hour_conversion() {
        let t = FitTable::DDR3_AVERAGE;
        assert!((t.events_per_hour() - 44.0e-9).abs() < 1e-18);
    }
}
