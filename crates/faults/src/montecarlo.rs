//! Monte Carlo sampling of memory-system fault histories.
//!
//! Fault arrivals are modeled as independent Poisson processes per device
//! and mode (the exponential failure distribution the paper assumes for
//! Fig. 2). One *lifetime sample* is the ordered list of fault events a
//! system experiences over its 7-year life; the reliability analyses
//! (Figs 2, 8, 18; Table III EOL) are statistics over many such samples.

use crate::geometry::{ChipLocation, SystemGeometry};
use crate::inject::{FaultInstance, DEFAULT_LINES_PER_ROW, DEFAULT_ROWS_PER_BANK};
use crate::modes::{FaultMode, FitTable, HOURS_PER_YEAR, LIFETIME_YEARS};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One fault arrival in a lifetime sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Arrival time, hours since system start.
    pub time_hours: f64,
    /// The materialized fault.
    pub fault: FaultInstance,
}

/// Sampler for system fault histories.
///
/// ```
/// use mem_faults::{FitTable, LifetimeSim, SystemGeometry};
/// use rand::SeedableRng;
///
/// let sim = LifetimeSim::new(
///     SystemGeometry::paper_reliability(),
///     FitTable::DDR3_AVERAGE,
/// );
/// // ~0.78 faults expected per 7-year lifetime of the 288-chip system
/// assert!((sim.expected_events() - 0.78).abs() < 0.01);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let history = sim.sample(&mut rng);
/// assert!(history.windows(2).all(|w| w[0].time_hours <= w[1].time_hours));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LifetimeSim {
    pub geometry: SystemGeometry,
    pub fit: FitTable,
    pub lifetime_hours: f64,
}

impl LifetimeSim {
    /// Paper defaults: 7-year lifetime.
    pub fn new(geometry: SystemGeometry, fit: FitTable) -> Self {
        Self {
            geometry,
            fit,
            lifetime_hours: LIFETIME_YEARS * HOURS_PER_YEAR,
        }
    }

    /// Expected number of fault events per lifetime.
    pub fn expected_events(&self) -> f64 {
        self.geometry.total_chips() as f64 * self.fit.events_per_hour() * self.lifetime_hours
    }

    /// Sample one lifetime: fault events sorted by arrival time.
    ///
    /// Sampling strategy: total arrivals are Poisson with mean
    /// [`Self::expected_events`]; each arrival is then placed uniformly in
    /// time, uniformly over devices, and over modes proportionally to their
    /// FIT share — an exact simulation of the superposed Poisson processes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<FaultEvent> {
        let mean = self.expected_events();
        let n = poisson(rng, mean);
        let mut events = Vec::with_capacity(n);
        let total_fit = self.fit.total();
        for _ in 0..n {
            let time_hours = rng.gen_range(0.0..self.lifetime_hours);
            let chip_idx = rng.gen_range(0..self.geometry.total_chips());
            let chip = ChipLocation::from_index(&self.geometry, chip_idx);
            // categorical draw over modes by FIT weight
            let mut pick = rng.gen_range(0.0..total_fit);
            let mut mode = FaultMode::MultiRank;
            for &m in &FaultMode::ALL {
                let r = self.fit.rate(m);
                if pick < r {
                    mode = m;
                    break;
                }
                pick -= r;
            }
            let fault = FaultInstance {
                chip,
                mode,
                bank: rng.gen_range(0..self.geometry.banks_per_chip as u32),
                row: rng.gen_range(0..DEFAULT_ROWS_PER_BANK),
                line: rng.gen_range(0..DEFAULT_LINES_PER_ROW),
                pattern_seed: rng.gen(),
            };
            events.push(FaultEvent { time_hours, fault });
        }
        events.sort_by(|a, b| a.time_hours.total_cmp(&b.time_hours));
        events
    }

    /// Run `trials` independent lifetimes in parallel, reducing each with
    /// `f` and collecting the outputs. Deterministic given `seed`.
    pub fn run_trials<T: Send>(
        &self,
        trials: usize,
        seed: u64,
        f: impl Fn(&[FaultEvent]) -> T + Sync,
    ) -> Vec<T> {
        (0..trials)
            .into_par_iter()
            .map(|i| {
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(
                    seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                let events = self.sample(&mut rng);
                f(&events)
            })
            .collect()
    }

    /// Fig. 2 statistic: mean time (hours) from one fault to the next fault
    /// in a *different* channel, measured over sampled histories. Histories
    /// without such a pair contribute the censoring bound (lifetime), making
    /// the estimate conservative (the true mean is at least this large).
    pub fn mean_time_between_channel_faults(&self, trials: usize, seed: u64) -> f64 {
        // Use a long observation horizon so the statistic is about the
        // process, not truncation: scale lifetime up when faults are rare.
        let horizon = self.lifetime_hours.max(
            // expect ~50 events in the horizon
            50.0 / (self.geometry.total_chips() as f64 * self.fit.events_per_hour()),
        );
        let sim = LifetimeSim {
            lifetime_hours: horizon,
            ..*self
        };
        let gaps: Vec<(f64, usize)> = sim.run_trials(trials, seed, |events| {
            let mut total = 0.0;
            let mut count = 0usize;
            for (i, e) in events.iter().enumerate() {
                for later in &events[i + 1..] {
                    if later.fault.chip.channel != e.fault.chip.channel {
                        total += later.time_hours - e.time_hours;
                        count += 1;
                        break;
                    }
                }
            }
            (total, count)
        });
        let (sum, n) = gaps
            .iter()
            .fold((0.0, 0usize), |(s, c), &(gs, gc)| (s + gs, c + gc));
        if n == 0 {
            f64::INFINITY
        } else {
            sum / n as f64
        }
    }

    /// Fig. 18 statistic: probability that, in at least one scrub window of
    /// length `window_hours` during the lifetime, faults arrive in two or
    /// more distinct channels.
    pub fn multi_channel_window_probability(
        &self,
        window_hours: f64,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let hits: usize = self
            .run_trials(trials, seed, |events| {
                let mut windows: std::collections::HashMap<u64, usize> =
                    std::collections::HashMap::new();
                for e in events {
                    let w = (e.time_hours / window_hours) as u64;
                    let entry = windows.entry(w).or_insert(usize::MAX);
                    let ch = e.fault.chip.channel;
                    if *entry == usize::MAX {
                        *entry = ch;
                    } else if *entry != ch {
                        return true;
                    }
                }
                false
            })
            .iter()
            .filter(|&&b| b)
            .count();
        hits as f64 / trials as f64
    }
}

use rand::SeedableRng;

/// Sample a Poisson(`mean`) variate. Knuth's method below mean 30, normal
/// approximation (rounded, clamped) above — accurate to far better than the
/// Monte Carlo noise of our analyses.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    assert!(mean >= 0.0);
    if mean == 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Box-Muller normal approximation N(mean, mean)
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = mean + z * mean.sqrt();
        v.round().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        for &mean in &[0.5f64, 3.0, 20.0, 100.0] {
            let n = 20_000;
            let sum: usize = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let est = sum as f64 / n as f64;
            assert!(
                (est - mean).abs() < mean.max(1.0) * 0.05,
                "mean {mean}: got {est}"
            );
        }
    }

    #[test]
    fn expected_events_for_paper_geometry() {
        let sim = LifetimeSim::new(SystemGeometry::paper_reliability(), FitTable::DDR3_AVERAGE);
        // 288 chips * 44e-9/h * 61320h = 0.777 events per lifetime
        assert!((sim.expected_events() - 0.777).abs() < 0.01);
    }

    #[test]
    fn sample_is_sorted_and_in_range() {
        let sim = LifetimeSim::new(
            SystemGeometry::paper_reliability(),
            FitTable::DDR3_AVERAGE.scaled_to(4400.0), // inflate so events exist
        );
        let mut rng = StdRng::seed_from_u64(2);
        let ev = sim.sample(&mut rng);
        assert!(!ev.is_empty());
        for w in ev.windows(2) {
            assert!(w[0].time_hours <= w[1].time_hours);
        }
        for e in &ev {
            assert!(e.time_hours >= 0.0 && e.time_hours <= sim.lifetime_hours);
            assert!(e.fault.chip.channel < 8);
            assert!(e.fault.bank < 8);
        }
    }

    #[test]
    fn run_trials_is_deterministic() {
        let sim = LifetimeSim::new(
            SystemGeometry::paper_reliability(),
            FitTable::DDR3_AVERAGE.scaled_to(1000.0),
        );
        let a = sim.run_trials(50, 7, |e| e.len());
        let b = sim.run_trials(50, 7, |e| e.len());
        assert_eq!(a, b);
        let c = sim.run_trials(50, 8, |e| e.len());
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    fn channel_fault_gap_scales_inversely_with_fit() {
        let geo = SystemGeometry::paper_reliability();
        let lo = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE.scaled_to(100.0));
        let hi = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE.scaled_to(400.0));
        let t_lo = lo.mean_time_between_channel_faults(200, 3);
        let t_hi = hi.mean_time_between_channel_faults(200, 3);
        let ratio = t_lo / t_hi;
        assert!(
            (2.0..8.0).contains(&ratio),
            "4x FIT should shrink the gap ~4x, ratio {ratio}"
        );
    }

    #[test]
    fn window_probability_monotone_in_window() {
        let geo = SystemGeometry::paper_reliability();
        let sim = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE.scaled_to(2000.0));
        let p_small = sim.multi_channel_window_probability(1.0, 400, 11);
        let p_big = sim.multi_channel_window_probability(1000.0, 400, 11);
        assert!(
            p_big >= p_small,
            "longer windows catch more coincidences: {p_small} vs {p_big}"
        );
        assert!(p_big > 0.0);
    }

    #[test]
    fn mode_mix_tracks_fit_weights() {
        let geo = SystemGeometry::paper_reliability();
        let sim = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE.scaled_to(44000.0));
        let mut rng = StdRng::seed_from_u64(5);
        let ev = sim.sample(&mut rng);
        assert!(ev.len() > 400);
        let bits = ev
            .iter()
            .filter(|e| e.fault.mode == FaultMode::SingleBit)
            .count() as f64;
        let frac = bits / ev.len() as f64;
        let expect = FitTable::DDR3_AVERAGE.single_bit / FitTable::DDR3_AVERAGE.total();
        assert!((frac - expect).abs() < 0.08, "bit share {frac} vs {expect}");
    }
}
