//! # mem-faults — DRAM fault models and Monte Carlo lifetime simulation
//!
//! Encodes the DRAM device-level fault taxonomy and field failure rates the
//! ECC Parity paper evaluates against (Sridharan et al., "Feng Shui of
//! supercomputer memory", SC 2013: an average DDR3 fault rate of ~44
//! FIT/chip across vendors), provides fault *injection* — mapping a fault
//! instance to the set of memory lines and chip bits it corrupts — and an
//! exponential-arrival Monte Carlo engine used by the reliability figures
//! (Figs 2, 8, 18) and the end-of-life capacity rows of Table III.

pub mod geometry;
pub mod inject;
pub mod modes;
pub mod montecarlo;

pub use geometry::{ChipLocation, SystemGeometry};
pub use inject::FaultInstance;
pub use modes::{FaultMode, FitTable, HOURS_PER_YEAR, LIFETIME_YEARS};
pub use montecarlo::{FaultEvent, LifetimeSim};
