//! Fault instances: a concrete fault in a concrete device, with enough
//! geometry to decide which memory lines it corrupts and how.

use crate::geometry::ChipLocation;
use crate::modes::FaultMode;
use serde::{Deserialize, Serialize};

/// Chip-internal geometry defaults for a 2Gb DDR3 device.
pub const DEFAULT_ROWS_PER_BANK: u32 = 32 * 1024;
pub const DEFAULT_LINES_PER_ROW: u32 = 64; // 4KB row / 64B lines

/// A materialized fault: mode plus the coordinates it pins down.
///
/// Coordinates that a mode does not constrain are ignored when deciding
/// whether an access is affected (e.g. a `SingleBank` fault hits every
/// row/line of `bank`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultInstance {
    pub chip: ChipLocation,
    pub mode: FaultMode,
    /// Bank within the device the fault is anchored at.
    pub bank: u32,
    /// Row within the bank (for row/bit/word faults).
    pub row: u32,
    /// Line within the row (for bit/word faults) or column stride anchor
    /// (for column faults).
    pub line: u32,
    /// Seed for the deterministic per-fault corruption pattern.
    pub pattern_seed: u64,
}

impl FaultInstance {
    /// Does an access to (`rank`, `bank`, `row`, `line`) of this fault's
    /// channel read corrupted bits from this chip?
    pub fn affects(&self, rank: usize, bank: u32, row: u32, line: u32) -> bool {
        if rank != self.chip.rank && self.mode != FaultMode::MultiRank {
            return false;
        }
        match self.mode {
            FaultMode::SingleBit | FaultMode::SingleWord => {
                bank == self.bank && row == self.row && line == self.line
            }
            FaultMode::SingleRow => bank == self.bank && row == self.row,
            // A column fault corrupts the same line offset in every row of
            // the bank (a column runs vertically through the array).
            FaultMode::SingleColumn => bank == self.bank && line == self.line,
            FaultMode::SingleBank => bank == self.bank,
            // Multi-bank: the fault's bank pair (shared sense-amp stripe).
            FaultMode::MultiBank => bank / 2 == self.bank / 2,
            // Whole device, every rank sharing its I/O.
            FaultMode::MultiRank => true,
        }
    }

    /// Corrupt the `bytes` a faulty chip returns for one access.
    ///
    /// The pattern is deterministic per (fault, coordinates): a real stuck
    /// fault returns the same wrong bits every time, which matters for the
    /// error-counter logic (repeated reads of one faulty line must not look
    /// like new faults).
    pub fn corrupt(&self, bytes: &mut [u8], bank: u32, row: u32, line: u32) {
        if obs::metrics::enabled() {
            obs::counter!("faults.corruptions").inc();
            obs::histogram!("faults.corrupted_bytes").observe(bytes.len() as u64);
        }
        let mut state = self
            .pattern_seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(((bank as u64) << 40) ^ ((row as u64) << 16) ^ line as u64);
        for b in bytes.iter_mut() {
            // xorshift64* — cheap deterministic stream
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545F4914F6CDD1D);
            let flip = (r >> 32) as u8;
            // Guarantee corruption: never a zero mask.
            *b ^= if flip == 0 { 0xFF } else { flip };
        }
    }

    /// Number of distinct 4KB pages (rows) of the channel this fault can
    /// produce errors in — drives how fast it increments a bank-pair error
    /// counter under scrubbing (threshold logic, §III-C).
    pub fn error_page_span(&self, rows_per_bank: u32, banks_per_chip: u32) -> u64 {
        match self.mode {
            FaultMode::SingleBit | FaultMode::SingleWord | FaultMode::SingleRow => 1,
            FaultMode::SingleColumn | FaultMode::SingleBank => rows_per_bank as u64,
            FaultMode::MultiBank => 2 * rows_per_bank as u64,
            FaultMode::MultiRank => banks_per_chip as u64 * rows_per_bank as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::SystemGeometry;

    fn fault(mode: FaultMode) -> FaultInstance {
        FaultInstance {
            chip: ChipLocation {
                channel: 0,
                rank: 1,
                chip: 3,
            },
            mode,
            bank: 2,
            row: 100,
            line: 5,
            pattern_seed: 42,
        }
    }

    #[test]
    fn bit_fault_hits_exactly_one_line() {
        let f = fault(FaultMode::SingleBit);
        assert!(f.affects(1, 2, 100, 5));
        assert!(!f.affects(1, 2, 100, 6));
        assert!(!f.affects(1, 2, 101, 5));
        assert!(!f.affects(1, 3, 100, 5));
        assert!(!f.affects(0, 2, 100, 5), "different rank unaffected");
    }

    #[test]
    fn row_fault_spans_the_row() {
        let f = fault(FaultMode::SingleRow);
        assert!(f.affects(1, 2, 100, 0));
        assert!(f.affects(1, 2, 100, 63));
        assert!(!f.affects(1, 2, 99, 0));
    }

    #[test]
    fn column_fault_spans_all_rows_at_one_offset() {
        let f = fault(FaultMode::SingleColumn);
        assert!(f.affects(1, 2, 0, 5));
        assert!(f.affects(1, 2, 31000, 5));
        assert!(!f.affects(1, 2, 0, 4));
    }

    #[test]
    fn bank_and_multibank_extent() {
        let f = fault(FaultMode::SingleBank);
        assert!(f.affects(1, 2, 7, 7));
        assert!(!f.affects(1, 3, 7, 7));
        let f = fault(FaultMode::MultiBank);
        assert!(f.affects(1, 2, 7, 7));
        assert!(f.affects(1, 3, 7, 7), "bank pair partner affected");
        assert!(!f.affects(1, 4, 7, 7));
    }

    #[test]
    fn multirank_affects_other_ranks() {
        let f = fault(FaultMode::MultiRank);
        assert!(f.affects(0, 0, 0, 0));
        assert!(f.affects(3, 7, 9, 9));
    }

    #[test]
    fn corruption_is_deterministic_and_nonzero() {
        let f = fault(FaultMode::SingleBank);
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        f.corrupt(&mut a, 2, 7, 3);
        f.corrupt(&mut b, 2, 7, 3);
        assert_eq!(a, b, "same coordinates, same corruption");
        assert!(a.iter().any(|&x| x != 0), "corruption must change bits");
        let mut c = vec![0u8; 16];
        f.corrupt(&mut c, 2, 8, 3);
        assert_ne!(a, c, "different row, different pattern");
    }

    #[test]
    fn multibank_boundary_banks_follow_even_odd_pairing() {
        // Pairs are (0,1), (2,3), ... — a MultiBank fault anchored at an odd
        // bank reaches down to its even partner, never across the pair edge.
        let mut f = fault(FaultMode::MultiBank);
        f.bank = 3;
        assert!(f.affects(1, 2, 0, 0), "even partner of anchor 3");
        assert!(f.affects(1, 3, 0, 0));
        assert!(!f.affects(1, 1, 0, 0), "bank 1 is in pair (0,1)");
        assert!(!f.affects(1, 4, 0, 0), "bank 4 is in pair (4,5)");
        f.bank = 0;
        assert!(f.affects(1, 0, 0, 0));
        assert!(f.affects(1, 1, 0, 0), "odd partner of anchor 0");
        assert!(!f.affects(1, 2, 0, 0));
    }

    #[test]
    fn multirank_crosses_ranks_for_every_bank() {
        // MultiRank is the only mode that ignores the rank coordinate; it
        // must also ignore bank-pair boundaries (the whole device is gone).
        let f = fault(FaultMode::MultiRank);
        for rank in 0..4 {
            for bank in 0..8 {
                assert!(f.affects(rank, bank, 0, 0));
            }
        }
        // Every other mode pins the rank.
        for mode in [
            FaultMode::SingleBit,
            FaultMode::SingleWord,
            FaultMode::SingleRow,
            FaultMode::SingleColumn,
            FaultMode::SingleBank,
            FaultMode::MultiBank,
        ] {
            assert!(!fault(mode).affects(0, 2, 100, 5), "{mode:?} rank-pinned");
        }
    }

    #[test]
    fn corrupt_is_a_deterministic_xor_involution() {
        // The pattern depends only on (fault, coordinates), so applying it
        // twice restores the original bytes — the property `inject_transient`
        // healing via scrub write-back relies on.
        let f = fault(FaultMode::SingleRow);
        let original: Vec<u8> = (0..64).map(|i| (i * 7 + 13) as u8).collect();
        let mut buf = original.clone();
        f.corrupt(&mut buf, 2, 100, 0);
        assert_ne!(buf, original);
        f.corrupt(&mut buf, 2, 100, 0);
        assert_eq!(buf, original, "second application must undo the first");
    }

    #[test]
    fn corrupt_pattern_varies_with_seed_and_coordinates() {
        let base = fault(FaultMode::SingleBank);
        let mut other = base;
        other.pattern_seed = 43;
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        let mut c = vec![0u8; 32];
        base.corrupt(&mut a, 2, 7, 3);
        other.corrupt(&mut b, 2, 7, 3);
        base.corrupt(&mut c, 2, 7, 4);
        assert_ne!(a, b, "different seed, different pattern");
        assert_ne!(a, c, "different line, different pattern");
        // Identical instances are interchangeable (pure function of fields).
        let clone = base;
        let mut d = vec![0u8; 32];
        clone.corrupt(&mut d, 2, 7, 3);
        assert_eq!(a, d);
    }

    #[test]
    fn page_span_ordering() {
        let g = SystemGeometry::paper_reliability();
        let rows = DEFAULT_ROWS_PER_BANK;
        let span = |m: FaultMode| fault(m).error_page_span(rows, g.banks_per_chip as u32);
        // Small faults touch one page; large faults span whole banks.
        assert_eq!(span(FaultMode::SingleBit), 1);
        assert_eq!(span(FaultMode::SingleWord), 1);
        assert_eq!(span(FaultMode::SingleRow), 1);
        assert_eq!(span(FaultMode::SingleColumn), rows as u64);
        assert_eq!(span(FaultMode::SingleBank), rows as u64);
        assert_eq!(span(FaultMode::MultiBank), 2 * rows as u64);
        assert_eq!(span(FaultMode::MultiRank), 8 * rows as u64);
    }
}
