//! Property-based tests of the fault-model invariants.

use mem_faults::{ChipLocation, FaultInstance, FaultMode, FitTable, LifetimeSim, SystemGeometry};
use proptest::prelude::*;

proptest! {
    #[test]
    fn fit_scaling_preserves_mode_shares(target in 1.0f64..10_000.0) {
        let base = FitTable::DDR3_AVERAGE;
        let scaled = base.scaled_to(target);
        prop_assert!((scaled.total() - target).abs() < 1e-6);
        for m in FaultMode::ALL {
            let a = base.rate(m) / base.total();
            let b = scaled.rate(m) / scaled.total();
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn chip_index_bijection(
        channels in 1usize..16,
        ranks in 1usize..8,
        chips in 1usize..48,
        pick in any::<usize>(),
    ) {
        let geo = SystemGeometry {
            channels,
            ranks_per_channel: ranks,
            chips_per_rank: chips,
            banks_per_chip: 8,
        };
        let idx = pick % geo.total_chips();
        let loc = ChipLocation::from_index(&geo, idx);
        prop_assert_eq!(loc.index(&geo), idx);
        prop_assert!(loc.channel < channels && loc.rank < ranks && loc.chip < chips);
    }

    #[test]
    fn fault_extent_is_monotone_in_mode(
        bank in 0u32..8,
        row in 0u32..1024,
        line in 0u32..64,
        qb in 0u32..8,
        qr in 0u32..1024,
        ql in 0u32..64,
    ) {
        // If a smaller mode affects a coordinate, every larger mode anchored
        // at the same place must too (footprints nest: bit ⊂ row ⊂ bank ⊂
        // multibank ⊂ multirank; column ⊂ bank).
        let mk = |mode| FaultInstance {
            chip: ChipLocation { channel: 0, rank: 1, chip: 2 },
            mode,
            bank,
            row,
            line,
            pattern_seed: 9,
        };
        let chain = [
            FaultMode::SingleBit,
            FaultMode::SingleRow,
            FaultMode::SingleBank,
            FaultMode::MultiBank,
            FaultMode::MultiRank,
        ];
        for w in chain.windows(2) {
            let small = mk(w[0]);
            let big = mk(w[1]);
            if small.affects(1, qb, qr, ql) {
                prop_assert!(
                    big.affects(1, qb, qr, ql),
                    "{:?} hit but {:?} missed",
                    w[0],
                    w[1]
                );
            }
        }
        // column ⊂ bank
        if mk(FaultMode::SingleColumn).affects(1, qb, qr, ql) {
            prop_assert!(mk(FaultMode::SingleBank).affects(1, qb, qr, ql));
        }
    }

    #[test]
    fn sampled_events_stay_in_bounds(seed in any::<u64>()) {
        use rand::SeedableRng;
        let geo = SystemGeometry::paper_reliability();
        let sim = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE.scaled_to(20_000.0));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for e in sim.sample(&mut rng) {
            prop_assert!(e.time_hours >= 0.0 && e.time_hours <= sim.lifetime_hours);
            prop_assert!(e.fault.chip.channel < geo.channels);
            prop_assert!(e.fault.chip.rank < geo.ranks_per_channel);
            prop_assert!(e.fault.chip.chip < geo.chips_per_rank);
            prop_assert!((e.fault.bank as usize) < geo.banks_per_chip);
        }
    }

    #[test]
    fn corruption_changes_at_least_one_byte(
        seed in any::<u64>(),
        len in 1usize..64,
        bank in 0u32..8,
        row in 0u32..100,
        line in 0u32..64,
    ) {
        let f = FaultInstance {
            chip: ChipLocation { channel: 0, rank: 0, chip: 0 },
            mode: FaultMode::SingleBank,
            bank,
            row,
            line,
            pattern_seed: seed,
        };
        let clean = vec![0u8; len];
        let mut buf = clean.clone();
        f.corrupt(&mut buf, bank, row, line);
        prop_assert_ne!(buf.clone(), clean.clone(), "corruption must corrupt");
        // and be deterministic
        let mut again = clean;
        f.corrupt(&mut again, bank, row, line);
        prop_assert_eq!(buf, again);
    }
}
