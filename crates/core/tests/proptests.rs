//! Property-based tests of the ECC Parity core invariants: the layout
//! bijection, the parity update equation, and reconstruction identities.

use ecc_codes::lotecc::LotEcc;
use ecc_codes::traits::CorrectionSplit;
use ecc_parity::layout::{LineLoc, ParityLayout};
use ecc_parity::memory::{ParityConfig, ParityMemory};
use ecc_parity::xorcache::XorCache;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layout_membership_is_a_partition(
        channels in 2usize..=10,
        bank in 0usize..4,
        row_sel in any::<u32>(),
        line in 0u32..4,
        chan_sel in any::<usize>(),
    ) {
        let l = ParityLayout::new(channels, 4, 3 * (channels as u32 - 1), 4, 1, 4);
        let row = row_sel % l.data_rows;
        let c = chan_sel % channels;
        let loc = LineLoc { bank, row, line };
        let g = l.group_of(c, &loc);
        // never grouped with the parity channel
        prop_assert_ne!(g.g, c);
        // membership round trip
        let members = l.members(&g);
        prop_assert!(members.contains(&(c, loc)));
        // at most one member per channel
        for ch in 0..channels {
            prop_assert!(members.iter().filter(|(mc, _)| *mc == ch).count() <= 1);
        }
        // every member maps back to the same group
        for (mc, mloc) in members {
            prop_assert_eq!(l.group_of(mc, &mloc), g);
        }
    }

    #[test]
    fn parity_reconstruction_identity(
        channels in 3usize..=6,
        writes in prop::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u64>()), 1..40),
    ) {
        // After arbitrary writes, for every group:
        //   parity == XOR of correction bits of all members,
        // so each member's correction bits equal parity XOR the others —
        // the paper's reconstruction (Fig 6 step C).
        let cfg = ParityConfig::small(channels);
        let mut mem = ParityMemory::new(LotEcc::five(), cfg);
        let ecc = LotEcc::five();
        for (cv, lv, seed) in &writes {
            let c = (*cv as usize) % channels;
            let bank = (*lv as usize) % cfg.banks_per_channel;
            let row = ((*lv >> 4) as u32) % cfg.data_rows;
            let line = ((*lv >> 9) as u32) % cfg.lines_per_row;
            let mut data = vec![0u8; 64];
            let mut s = *seed | 1;
            for b in &mut data {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
                *b = (s >> 33) as u8;
            }
            mem.write(c, LineLoc { bank, row, line }, &data).unwrap();
        }
        // check a sample of groups: parity-from-scratch equals XOR of
        // member correction bits computed through the public read path
        for c in 0..channels {
            let loc = LineLoc { bank: 0, row: 0, line: 0 };
            let g = mem.layout().group_of(c, &loc);
            let scratch = mem.compute_parity_from_scratch(&g);
            let mut xor = vec![0u8; 16];
            for (mc, mloc) in mem.layout().members(&g) {
                let data = mem.read(mc, mloc).unwrap();
                for (a, b) in xor.iter_mut().zip(ecc.correction_of(&data)) {
                    *a ^= b;
                }
            }
            prop_assert_eq!(scratch, xor);
        }
    }

    #[test]
    fn write_read_roundtrip_under_random_traffic(
        ops in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u64>()), 1..60),
    ) {
        let cfg = ParityConfig::small(4);
        let mut mem = ParityMemory::new(LotEcc::five(), cfg);
        let mut shadow = std::collections::HashMap::new();
        for (cv, lv, seed) in &ops {
            let c = (*cv as usize) % 4;
            let loc = LineLoc {
                bank: (*lv as usize) % cfg.banks_per_channel,
                row: ((*lv >> 4) as u32) % cfg.data_rows,
                line: ((*lv >> 9) as u32) % cfg.lines_per_row,
            };
            let mut data = vec![0u8; 64];
            let mut s = *seed;
            for b in &mut data {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                *b = (s >> 33) as u8;
            }
            mem.write(c, loc, &data).unwrap();
            shadow.insert((c, loc), data);
        }
        for ((c, loc), data) in shadow {
            prop_assert_eq!(mem.read(c, loc).unwrap(), data);
        }
        prop_assert_eq!(mem.stats().detected_errors, 0);
        prop_assert_eq!(mem.stats().uncorrectable, 0);
    }

    #[test]
    fn xorcache_equivalent_to_direct_updates(
        deltas in prop::collection::vec((0usize..6, any::<[u8; 4]>()), 1..80),
        capacity in 1usize..5,
    ) {
        use ecc_parity::layout::GroupId;
        let gid = |k: usize| GroupId { bank: k, block: 0, line: 0, g: 0 };
        let mut direct = vec![[0u8; 4]; 6];
        let mut via = vec![[0u8; 4]; 6];
        let mut cache = XorCache::new(capacity);
        for (k, d) in &deltas {
            for (a, b) in direct[*k].iter_mut().zip(d) {
                *a ^= b;
            }
            if let Some((eg, acc)) = cache.merge(gid(*k), d) {
                for (a, b) in via[eg.bank].iter_mut().zip(&acc) {
                    *a ^= b;
                }
            }
        }
        for (eg, acc) in cache.flush_all() {
            for (a, b) in via[eg.bank].iter_mut().zip(&acc) {
                *a ^= b;
            }
        }
        prop_assert_eq!(direct, via);
    }

    #[test]
    fn parity_address_unique_within_channel(
        channels in 2usize..=5,
    ) {
        let l = ParityLayout::new(channels, 2, 2 * (channels as u32 - 1), 2, 1, 4);
        let mut seen = std::collections::HashSet::new();
        for bank in 0..l.banks {
            for block in 0..l.blocks_per_bank() {
                for line in 0..l.lines_per_row {
                    for g in 0..channels {
                        let gid = ecc_parity::layout::GroupId { bank, block, line, g };
                        let addr = l.parity_address(&gid);
                        prop_assert!(seen.insert((g, addr)), "collision at {:?}", gid);
                    }
                }
            }
        }
    }
}
