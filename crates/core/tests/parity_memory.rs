//! End-to-end behavioral tests of the ECC-Parity functional memory:
//! the paper's read path (A1/B/C), write path (A2/D/E), scrubbing,
//! page retirement, migration, and the multi-channel failure semantics.

use ecc_codes::lotecc::LotEcc;
use ecc_codes::traits::MemoryEcc;
use ecc_parity::layout::LineLoc;
use ecc_parity::memory::{MemError, ParityConfig, ParityMemory};
use mem_faults::{ChipLocation, FaultInstance, FaultMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mem(channels: usize) -> ParityMemory<LotEcc> {
    ParityMemory::new(LotEcc::five(), ParityConfig::small(channels))
}

fn line(rng: &mut StdRng) -> Vec<u8> {
    (0..64).map(|_| rng.gen()).collect()
}

fn bank_fault(channel: usize, chip: usize, bank: u32) -> FaultInstance {
    FaultInstance {
        chip: ChipLocation {
            channel,
            rank: 0,
            chip,
        },
        mode: FaultMode::SingleBank,
        bank,
        row: 0,
        line: 0,
        pattern_seed: 0xBEEF + channel as u64,
    }
}

#[test]
fn clean_write_read_roundtrip() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(1);
    let mut expected = vec![];
    for bank in 0..4 {
        for row in 0..m.config().data_rows {
            for l in 0..m.config().lines_per_row {
                let d = line(&mut rng);
                let loc = LineLoc { bank, row, line: l };
                m.write(bank % 4, loc, &d).unwrap();
                expected.push((bank % 4, loc, d));
            }
        }
    }
    for (c, loc, d) in expected {
        assert_eq!(m.read(c, loc).unwrap(), d);
    }
    assert_eq!(m.stats().detected_errors, 0);
    assert_eq!(m.stats().parity_reconstructions, 0);
}

#[test]
fn single_channel_bank_fault_corrected_through_parity() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(2);
    let loc = LineLoc {
        bank: 0,
        row: 1,
        line: 2,
    };
    let d = line(&mut rng);
    m.write(0, loc, &d).unwrap();
    // Chip 1 (a data chip of LOT-ECC5) fails across bank 0 of channel 0.
    m.inject_fault(bank_fault(0, 1, 0));
    let got = m.read(0, loc).expect("single-channel fault must correct");
    assert_eq!(got, d);
    assert_eq!(m.stats().parity_reconstructions, 1);
    // Reconstruction read the other members (up to N-2 of them).
    assert!(m.stats().reconstruction_reads >= 1);
    assert!(m.stats().reconstruction_reads <= 3);
}

#[test]
fn error_detection_triggers_page_retirement_with_peers() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(3);
    let loc = LineLoc {
        bank: 2,
        row: 0,
        line: 0,
    };
    m.write(1, loc, &line(&mut rng)).unwrap();
    m.inject_fault(FaultInstance {
        chip: ChipLocation {
            channel: 1,
            rank: 0,
            chip: 0,
        },
        mode: FaultMode::SingleRow,
        bank: 2,
        row: 0,
        line: 0,
        pattern_seed: 7,
    });
    let _ = m.read(1, loc).expect("row fault corrects via parity");
    // The page and its parity-sharing peers (other channels, same group)
    // are retired: N-1 = 3 pages.
    assert_eq!(m.health().retired_count(), 3);
    assert!(m.health().is_retired(1, 2, 0));
    assert_eq!(
        m.read(1, loc),
        Err(MemError::RetiredPage),
        "retired pages must reject further access"
    );
}

#[test]
fn scrub_escalates_bank_fault_to_migration() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(4);
    // Populate bank 0 of channel 2.
    for row in 0..m.config().data_rows {
        for l in 0..m.config().lines_per_row {
            m.write(
                2,
                LineLoc {
                    bank: 0,
                    row,
                    line: l,
                },
                &line(&mut rng),
            )
            .unwrap();
        }
    }
    m.inject_fault(bank_fault(2, 2, 0));
    let report = m.scrub();
    assert!(report.errors_detected >= 4);
    assert_eq!(
        report.pairs_migrated, 1,
        "threshold 4 must migrate the pair"
    );
    assert!(report.pages_retired > 0, "first errors retire pages");
    assert_eq!(
        report.uncorrectable, 0,
        "single-channel fault stays correctable"
    );
    assert!(m.health().is_faulty(2, 0));
    assert!(
        m.health().is_faulty(2, 1),
        "partner bank marked with the pair"
    );
}

#[test]
fn migrated_bank_reads_correct_via_stored_ecc_lines() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(5);
    let mut written = vec![];
    for row in 0..m.config().data_rows {
        for l in 0..m.config().lines_per_row {
            let d = line(&mut rng);
            m.write(
                0,
                LineLoc {
                    bank: 0,
                    row,
                    line: l,
                },
                &d,
            )
            .unwrap();
            written.push((
                LineLoc {
                    bank: 0,
                    row,
                    line: l,
                },
                d,
            ));
        }
    }
    m.inject_fault(bank_fault(0, 3, 0));
    m.scrub();
    assert!(m.health().is_faulty(0, 0));
    let before = m.stats().ecc_line_corrections;
    for (loc, d) in written {
        if m.health().is_retired(0, loc.bank, loc.row) {
            continue;
        }
        assert_eq!(m.read(0, loc).unwrap(), d, "ECC-line correction at {loc:?}");
    }
    assert!(m.stats().ecc_line_corrections > before);
}

#[test]
fn write_to_migrated_bank_updates_ecc_line() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(6);
    m.inject_fault(bank_fault(3, 1, 0));
    // Force migration directly (diagnosed externally).
    m.migrate_pair(3, 0);
    let loc = LineLoc {
        bank: 1, // partner bank: also marked faulty, also served by ECC lines
        row: 2,
        line: 1,
    };
    let d = line(&mut rng);
    m.write(3, loc, &d).unwrap();
    assert!(m.stats().ecc_line_updates >= 1, "step D must run");
    assert_eq!(m.read(3, loc).unwrap(), d);
}

#[test]
fn two_channel_same_location_faults_uncorrectable_then_fixed_by_migration() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(7);
    let loc = LineLoc {
        bank: 0,
        row: 0,
        line: 0,
    };
    let d0 = line(&mut rng);
    m.write(0, loc, &d0).unwrap();
    let loc2 = LineLoc {
        bank: 0,
        row: 2,
        line: 3,
    };
    let d2 = line(&mut rng);
    m.write(0, loc2, &d2).unwrap();
    // Channel 0's line at `loc` shares its parity group with other member
    // channels (the group's parity channel holds no member). Fault bank 0
    // in channel 0 and in one of the member channels.
    let g = m.layout().group_of(0, &loc);
    let (member_ch, _) = m
        .layout()
        .members(&g)
        .into_iter()
        .find(|(c, _)| *c != 0)
        .expect("group has other members");
    m.inject_fault(bank_fault(0, 1, 0));
    m.inject_fault(bank_fault(member_ch, 2, 0));
    // Reading channel 0: reconstruction needs the member channel's line,
    // which is dirty -> the paper's uncorrectable case.
    assert_eq!(m.read(0, loc), Err(MemError::Uncorrectable));
    assert!(m.stats().uncorrectable >= 1);
    // After the member channel's pair migrates (its contribution leaves the
    // parity), channel 0 becomes correctable again.
    m.migrate_pair(member_ch, 0);
    // `loc`'s page was retired by the uncorrectable event; verify recovery
    // on another (unretired) page of the same faulty bank.
    let got = m
        .read(0, loc2)
        .expect("post-migration single-channel correction");
    assert_eq!(got, d2);
}

#[test]
fn parity_incremental_updates_match_scratch_recompute() {
    let mut m = mem(5);
    let mut rng = StdRng::seed_from_u64(8);
    // Random write workload across all channels.
    for _ in 0..500 {
        let c = rng.gen_range(0..5);
        let loc = LineLoc {
            bank: rng.gen_range(0..m.config().banks_per_channel),
            row: rng.gen_range(0..m.config().data_rows),
            line: rng.gen_range(0..m.config().lines_per_row),
        };
        m.write(c, loc, &line(&mut rng)).unwrap();
    }
    // Every group's incrementally-maintained parity must equal a from-
    // scratch recomputation over member contents.
    for c in 0..5 {
        for bank in 0..m.config().banks_per_channel {
            for row in 0..m.config().data_rows {
                for l in 0..m.config().lines_per_row {
                    let loc = LineLoc { bank, row, line: l };
                    let g = m.layout().group_of(c, &loc);
                    let scratch = m.compute_parity_from_scratch(&g);
                    // Materialize + fetch through a read-path reconstruction:
                    // write a line of the group to force parity materialize.
                    let first = m.layout().members(&g)[0];
                    let cur = m.read(first.0, first.1);
                    if cur.is_ok() {
                        // No fault here, so reconstruct-from-scratch must be
                        // what the incremental state holds.
                        let again = m.compute_parity_from_scratch(&g);
                        assert_eq!(scratch, again);
                    }
                }
            }
        }
    }
    assert_eq!(m.stats().detected_errors, 0);
}

#[test]
fn capacity_overhead_grows_with_migrations_and_matches_static_formula() {
    let mut m = mem(8);
    let base = m.capacity_overhead();
    // Static: 12.5% + 1.125 * 0.25 / 7 = 16.52% (Table III, 8-channel row).
    assert!((base - 0.1652).abs() < 5e-3, "static overhead {base}");
    m.migrate_pair(0, 0);
    let after = m.capacity_overhead();
    assert!(after > base);
    // One of 16 pairs migrated at 2R extra: + (1/16)*0.5 = +3.1%.
    assert!((after - base - 0.5 / 16.0).abs() < 1e-6);
}

#[test]
fn stats_track_write_paths() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(9);
    let healthy = LineLoc {
        bank: 2,
        row: 1,
        line: 0,
    };
    m.write(0, healthy, &line(&mut rng)).unwrap();
    assert_eq!(m.stats().parity_updates, 1, "step E on healthy banks");
    assert_eq!(m.stats().ecc_line_updates, 0);
    m.migrate_pair(0, 1); // banks 2,3 of channel 0
    m.write(0, healthy, &line(&mut rng)).unwrap();
    assert_eq!(m.stats().parity_updates, 1);
    assert_eq!(m.stats().ecc_line_updates, 1, "step D on faulty banks");
}

#[test]
fn scrub_clean_memory_reports_nothing() {
    let mut m = mem(4);
    let report = m.scrub();
    assert_eq!(report.errors_detected, 0);
    assert_eq!(report.pages_retired, 0);
    assert_eq!(report.pairs_migrated, 0);
    assert_eq!(report.lines_scanned, 4 * m.config().lines_per_channel());
}

#[test]
fn multirank_fault_detected_across_banks() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(10);
    for bank in 0..4 {
        m.write(
            1,
            LineLoc {
                bank,
                row: 0,
                line: 0,
            },
            &line(&mut rng),
        )
        .unwrap();
    }
    m.inject_fault(FaultInstance {
        chip: ChipLocation {
            channel: 1,
            rank: 0,
            chip: 0,
        },
        mode: FaultMode::MultiRank,
        bank: 0,
        row: 0,
        line: 0,
        pattern_seed: 99,
    });
    let report = m.scrub();
    // A whole-device fault produces errors in every bank -> both pairs of
    // the channel end up migrated.
    assert!(report.errors_detected > 0);
    assert!(m.health().is_faulty(1, 0) && m.health().is_faulty(1, 2));
    assert_eq!(report.uncorrectable, 0);
}

#[test]
fn ecc_parity_generalizes_to_double_chipkill() {
    // The paper's claim that the optimization applies to "double chipkill
    // correct": run the same memory model over the 40-device code and
    // correct a *two-chip* failure in one channel through the parity.
    use ecc_codes::chipkill_double::ChipkillDouble;
    let cfg = ParityConfig::small(4);
    let mut m = ParityMemory::new(ChipkillDouble::new(), cfg);
    let mut rng = StdRng::seed_from_u64(77);
    let loc = LineLoc {
        bank: 0,
        row: 0,
        line: 1,
    };
    let data: Vec<u8> = (0..128).map(|_| rng.gen()).collect();
    m.write(1, loc, &data).unwrap();
    // Two devices of channel 1 fail across the bank.
    for chip in [4usize, 22] {
        m.inject_fault(FaultInstance {
            chip: ChipLocation {
                channel: 1,
                rank: 0,
                chip,
            },
            mode: FaultMode::SingleBank,
            bank: 0,
            row: 0,
            line: 0,
            pattern_seed: 0xF00 + chip as u64,
        });
    }
    let got = m.read(1, loc).expect("double-chip failure in one channel");
    assert_eq!(got, data);
    assert_eq!(m.stats().parity_reconstructions, 1);
}

#[test]
fn parity_memory_line_size_follows_the_code() {
    use ecc_codes::chipkill_double::ChipkillDouble;
    let m64 = ParityMemory::new(LotEcc::five(), ParityConfig::small(4));
    let m128 = ParityMemory::new(ChipkillDouble::new(), ParityConfig::small(4));
    assert_eq!(m64.ecc().data_bytes(), 64);
    assert_eq!(m128.ecc().data_bytes(), 128);
    // R drives the parity-capacity term: 0.25 vs 0.125.
    assert!(m64.capacity_overhead() > m128.capacity_overhead());
}

#[test]
fn transient_fault_healed_by_scrub_permanently() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(90);
    let loc = LineLoc {
        bank: 2,
        row: 1,
        line: 0,
    };
    let d = line(&mut rng);
    m.write(0, loc, &d).unwrap();
    // A transient strike corrupts the stored bytes of one line.
    m.inject_transient(FaultInstance {
        chip: ChipLocation {
            channel: 0,
            rank: 0,
            chip: 0,
        },
        mode: FaultMode::SingleBit,
        bank: 2,
        row: 1,
        line: 0,
        pattern_seed: 3,
    });
    // First scrub detects, corrects through the parity, and WRITES BACK.
    let rep1 = m.scrub();
    assert_eq!(rep1.errors_detected, 1);
    assert_eq!(rep1.uncorrectable, 0);
    // Second scrub: the damage is gone — no error, no further retirement.
    let rep2 = m.scrub();
    assert_eq!(rep2.errors_detected, 0, "transient must be healed in place");
    // The data reads back exactly even though the page retired on first hit?
    // (First error retired the page per §III-C; the healed copy is intact
    // for pages that were not retired.)
    let counter = m.health().counter(ecc_parity::health::PairId {
        channel: 0,
        pair: 1,
    });
    assert_eq!(counter, 1, "exactly one error was ever counted");
}

#[test]
fn permanent_fault_not_healed_by_scrub() {
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(91);
    for row in 0..m.config().data_rows {
        for l in 0..m.config().lines_per_row {
            m.write(
                3,
                LineLoc {
                    bank: 0,
                    row,
                    line: l,
                },
                &line(&mut rng),
            )
            .unwrap();
        }
    }
    // Permanent column fault: scrub cannot repair it in place; the counter
    // climbs to threshold and the pair migrates.
    m.inject_fault(FaultInstance {
        chip: ChipLocation {
            channel: 3,
            rank: 0,
            chip: 1,
        },
        mode: FaultMode::SingleColumn,
        bank: 0,
        row: 0,
        line: 2,
        pattern_seed: 5,
    });
    let rep = m.scrub();
    assert!(rep.errors_detected >= 4);
    assert_eq!(
        rep.pairs_migrated, 1,
        "permanent faults escalate to migration"
    );
}

#[test]
fn scrub_writeback_keeps_parity_consistent() {
    // After a scrub heals a transient, every group parity must still equal
    // its from-scratch recomputation (the write-back goes through the
    // standard equation-(1) update).
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(92);
    for bank in 0..4 {
        for row in 0..m.config().data_rows {
            m.write(1, LineLoc { bank, row, line: 0 }, &line(&mut rng))
                .unwrap();
        }
    }
    m.inject_transient(FaultInstance {
        chip: ChipLocation {
            channel: 1,
            rank: 0,
            chip: 2,
        },
        mode: FaultMode::SingleRow,
        bank: 1,
        row: 2,
        line: 0,
        pattern_seed: 17,
    });
    m.scrub();
    for c in 0..4 {
        for bank in 0..4 {
            let loc = LineLoc {
                bank,
                row: 0,
                line: 0,
            };
            let g = m.layout().group_of(c, &loc);
            let scratch = m.compute_parity_from_scratch(&g);
            let again = m.compute_parity_from_scratch(&g);
            assert_eq!(scratch, again);
        }
    }
    // And healthy reads across the memory still succeed.
    for bank in 0..4 {
        for row in 0..m.config().data_rows {
            let loc = LineLoc { bank, row, line: 0 };
            if !m.health().is_retired(1, bank, row) {
                m.read(1, loc).unwrap();
            }
        }
    }
}

#[test]
fn event_log_records_the_resilience_story() {
    use ecc_parity::events::MemEvent;
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(95);
    for row in 0..m.config().data_rows {
        for l in 0..m.config().lines_per_row {
            m.write(
                0,
                LineLoc {
                    bank: 0,
                    row,
                    line: l,
                },
                &line(&mut rng),
            )
            .unwrap();
        }
    }
    m.inject_fault(bank_fault(0, 1, 0));
    m.scrub();
    let log = m.event_log();
    assert!(log.count(|e| matches!(e, MemEvent::PageRetired { .. })) > 0);
    assert_eq!(
        log.count(|e| matches!(
            e,
            MemEvent::PairMigrated {
                channel: 0,
                pair: 0
            }
        )),
        1
    );
    assert_eq!(
        log.count(|e| matches!(e, MemEvent::Uncorrectable { .. })),
        0
    );
    // sequence numbers strictly increase
    let seqs: Vec<u64> = log.events().map(|(s, _)| *s).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn ecc_parity_over_the_rs_variant_detects_address_style_errors() {
    // §VI-D: the RS-based LOT-ECC5 variant keeps inter-chip detection on
    // the fly; ECC Parity runs over it unchanged (same R, same layout).
    use ecc_codes::lotecc::LotEcc5Rs;
    let cfg = ParityConfig::small(4);
    let mut m = ParityMemory::new(LotEcc5Rs::new(), cfg);
    let mut rng = StdRng::seed_from_u64(101);
    let loc = LineLoc {
        bank: 1,
        row: 0,
        line: 2,
    };
    let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
    m.write(2, loc, &data).unwrap();
    assert_eq!(
        m.ecc().correction_ratio(),
        0.25,
        "same R as baseline LOT-ECC5"
    );
    // Whole-chip failure in channel 2: detected by the inter-chip RS
    // symbol, corrected through the parity.
    m.inject_fault(bank_fault(2, 1, 1));
    assert_eq!(m.read(2, loc).unwrap(), data);
    assert!(m.stats().parity_reconstructions >= 1);
}

#[test]
fn bad_location_and_length_yield_typed_errors_not_panics() {
    let mut m = mem(4);
    let good = LineLoc {
        bank: 0,
        row: 0,
        line: 0,
    };
    let bad_bank = LineLoc {
        bank: 99,
        row: 0,
        line: 0,
    };
    assert!(matches!(
        m.read(0, bad_bank),
        Err(MemError::BadLocation { channel: 0, .. })
    ));
    assert!(matches!(
        m.read(17, good),
        Err(MemError::BadLocation { channel: 17, .. })
    ));
    assert_eq!(
        m.write(0, good, &[0u8; 12]),
        Err(MemError::LengthMismatch {
            expected: 64,
            got: 12
        })
    );
    // Error paths must not count as served traffic.
    assert_eq!(m.stats().reads, 0);
    assert_eq!(m.stats().writes, 0);
}

#[test]
fn try_inject_rejects_out_of_range_channel() {
    let mut m = mem(2);
    let f = bank_fault(5, 1, 0);
    assert_eq!(
        m.try_inject_fault(f),
        Err(MemError::FaultChannelOutOfRange {
            channel: 5,
            channels: 2
        })
    );
    assert_eq!(
        m.try_inject_transient(f),
        Err(MemError::FaultChannelOutOfRange {
            channel: 5,
            channels: 2
        })
    );
    assert!(m.faults().is_empty());
}

#[test]
fn parity_region_fault_is_detected_never_silent() {
    // A fault in the reserved parity region itself: reconstruction through
    // the corrupted parity must fail the codec's internal verification
    // (detected uncorrectable), and rebuilding the parity must restore
    // correctability.
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(77);
    let loc = LineLoc {
        bank: 0,
        row: 1,
        line: 1,
    };
    let d = line(&mut rng);
    m.write(0, loc, &d).unwrap();
    let group = m.layout().group_of(0, &loc);
    m.corrupt_parity(group, 0xDEAD);
    assert_eq!(m.audit_parity_consistency(), 1, "audit sees the bad parity");
    m.inject_fault(bank_fault(0, 1, 0));
    assert_eq!(
        m.read(0, loc),
        Err(MemError::Uncorrectable),
        "corrupted parity must surface as detected uncorrectable"
    );
    // The failed read retired the page (and its group peers), taking the
    // damaged group out of service; the audit must go quiet again.
    assert!(m.health().is_retired(0, 0, 1));
    assert_eq!(m.audit_parity_consistency(), 0);
    // A *different* row of the same faulty bank has an intact parity and
    // still corrects — the blast radius of a parity-region fault is its
    // group, not the bank.
    let loc2 = LineLoc {
        bank: 0,
        row: 0,
        line: 2,
    };
    let d2 = line(&mut rng);
    // (written before the fault would be cleaner; write path on a
    // non-faulty bank is unaffected by the read-path fault overlay)
    m.write(0, loc2, &d2).unwrap();
    assert_eq!(m.read(0, loc2).expect("other groups still correct"), d2);
    // Scrub-style repair of a corrupted parity: recompute from members.
    // (Exercised on a fault-free bank: the parity-corrected read of `loc2`
    // above retired its group, which takes that group out of audit scope.)
    let loc3 = LineLoc {
        bank: 2,
        row: 0,
        line: 3,
    };
    let d3 = line(&mut rng);
    m.write(0, loc3, &d3).unwrap();
    let g3 = m.layout().group_of(0, &loc3);
    m.corrupt_parity(g3, 0xBEEF);
    assert!(m.audit_parity_consistency() >= 1);
    m.rebuild_parity(g3);
    assert_eq!(m.audit_parity_consistency(), 0);
    // A clean read never consults the parity, so data stays intact either way.
    assert_eq!(m.read(0, loc3).unwrap(), d3);
    let _ = d;
}

#[test]
fn scrub_of_transient_keeps_parity_consistent() {
    // Regression: the scrub write-back must remove the line's *actual*
    // parity contribution (the reconstructed correction bits), not one
    // recomputed from the corrupted store — otherwise the healed group's
    // parity drifts and a later fault in any member becomes spuriously
    // uncorrectable.
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(78);
    for bank in 0..4 {
        for row in 0..m.config().data_rows {
            for l in 0..m.config().lines_per_row {
                let loc = LineLoc { bank, row, line: l };
                for c in 0..4 {
                    m.write(c, loc, &line(&mut rng)).unwrap();
                }
            }
        }
    }
    m.inject_transient(FaultInstance {
        chip: ChipLocation {
            channel: 2,
            rank: 0,
            chip: 0,
        },
        mode: FaultMode::SingleRow,
        bank: 1,
        row: 0,
        line: 0,
        pattern_seed: 99,
    });
    let report = m.scrub();
    assert!(report.errors_detected > 0, "strike must be seen by scrub");
    assert_eq!(report.uncorrectable, 0);
    assert_eq!(
        m.audit_parity_consistency(),
        0,
        "healed parities must equal a from-scratch recomputation"
    );
}

#[test]
fn write_to_transiently_corrupted_line_keeps_parity_consistent() {
    // Regression: a demand write that lands on a line whose stored bytes a
    // transient corrupted (before any scrub healed it) must not fold the
    // corrupted old value into the parity via equation (1).
    let mut m = mem(4);
    let mut rng = StdRng::seed_from_u64(79);
    let loc = LineLoc {
        bank: 1,
        row: 0,
        line: 3,
    };
    for c in 0..4 {
        m.write(c, loc, &line(&mut rng)).unwrap();
    }
    m.inject_transient(FaultInstance {
        chip: ChipLocation {
            channel: 2,
            rank: 0,
            chip: 1,
        },
        mode: FaultMode::SingleWord,
        bank: 1,
        row: 0,
        line: 3,
        pattern_seed: 55,
    });
    // Overwrite the struck line before any scrub sees it.
    let fresh = line(&mut rng);
    m.write(2, loc, &fresh).unwrap();
    m.scrub();
    assert_eq!(m.audit_parity_consistency(), 0);
    // And the group still corrects a later real fault.
    m.inject_fault(bank_fault(0, 1, 1));
    let d0 = m.read(0, loc).expect("group must still correct");
    assert_eq!(m.read(2, loc).unwrap(), fresh);
    let _ = d0;
}

/// `write_lines` must be observationally identical to issuing the same
/// writes one at a time: same per-item results, same stats, same event
/// log, same health state, same stored bytes and parity — across the
/// batched fast path AND every per-line fallback (faulty bank, retired
/// page, in-place-corrupted store, duplicate locations, malformed
/// length/address).
#[test]
fn write_lines_matches_sequential_writes() {
    let mut batched = mem(4);
    let mut serial = mem(4);
    let mut rng = StdRng::seed_from_u64(77);

    // Identical fill on both memories.
    let cfg = *batched.config();
    let mut all_locs = vec![];
    for c in 0..cfg.channels {
        for bank in 0..cfg.banks_per_channel {
            for row in 0..cfg.data_rows {
                for l in 0..cfg.lines_per_row {
                    let loc = LineLoc { bank, row, line: l };
                    let d = line(&mut rng);
                    batched.write(c, loc, &d).unwrap();
                    serial.write(c, loc, &d).unwrap();
                    all_locs.push((c, loc));
                }
            }
        }
    }

    // Faulty bank: channel 0, bank 0 takes ECC-line fallback writes.
    batched.inject_fault(bank_fault(0, 1, 0));
    serial.inject_fault(bank_fault(0, 1, 0));

    // Transient strike leaves channel 1's stored line detect-dirty, so a
    // write there must take the parity-reconstruction path.
    let strike = FaultInstance {
        chip: ChipLocation {
            channel: 1,
            rank: 0,
            chip: 1,
        },
        mode: FaultMode::SingleWord,
        bank: 1,
        row: 0,
        line: 0,
        pattern_seed: 99,
    };
    batched.inject_transient(strike);
    serial.inject_transient(strike);

    // Row fault + read retires a page (and its group peers) identically.
    let row_fault = FaultInstance {
        chip: ChipLocation {
            channel: 2,
            rank: 0,
            chip: 0,
        },
        mode: FaultMode::SingleRow,
        bank: 2,
        row: 0,
        line: 0,
        pattern_seed: 7,
    };
    batched.inject_fault(row_fault);
    serial.inject_fault(row_fault);
    let rloc = LineLoc {
        bank: 2,
        row: 0,
        line: 0,
    };
    let _ = batched.read(2, rloc).unwrap();
    let _ = serial.read(2, rloc).unwrap();
    let retired = batched.health().retired_pages();
    assert_eq!(retired, serial.health().retired_pages());
    assert!(!retired.is_empty());
    let (rp_c, rp_bank, rp_row) = retired[0];

    // Batch mixing every path the write-side state machine has.
    let mut batch: Vec<(usize, LineLoc, Vec<u8>)> = vec![];
    for c in 0..cfg.channels {
        for l in 0..cfg.lines_per_row {
            let loc = LineLoc {
                bank: 1,
                row: 1,
                line: l,
            };
            batch.push((c, loc, line(&mut rng))); // clean fast path
        }
    }
    let dup = LineLoc {
        bank: 3,
        row: 2,
        line: 1,
    };
    batch.push((3, dup, line(&mut rng))); // duplicate location,
    batch.push((3, dup, line(&mut rng))); // second wins sequentially
    batch.push((
        0,
        LineLoc {
            bank: 0,
            row: 1,
            line: 2,
        },
        line(&mut rng),
    )); // faulty bank -> ECC-line write
    batch.push((
        rp_c,
        LineLoc {
            bank: rp_bank,
            row: rp_row,
            line: 1,
        },
        line(&mut rng),
    )); // retired page -> Err(RetiredPage)
    batch.push((
        1,
        LineLoc {
            bank: 1,
            row: 0,
            line: 0,
        },
        line(&mut rng),
    )); // detect-dirty store -> reconstruction path
    batch.push((
        1,
        LineLoc {
            bank: 1,
            row: 0,
            line: 1,
        },
        line(&mut rng),
    )); // clean line sharing the dirtied line's row
    batch.push((2, dup, line(&mut rng)[..32].to_vec())); // wrong length
    batch.push((
        2,
        LineLoc {
            bank: 99,
            row: 0,
            line: 0,
        },
        line(&mut rng),
    )); // invalid address

    let refs: Vec<(usize, LineLoc, &[u8])> = batch
        .iter()
        .map(|(c, l, d)| (*c, *l, d.as_slice()))
        .collect();
    let got = batched.write_lines(&refs);
    let want: Vec<_> = batch
        .iter()
        .map(|(c, l, d)| serial.write(*c, *l, d))
        .collect();

    assert_eq!(got, want, "per-item results must match sequential writes");
    assert_eq!(batched.stats(), serial.stats());
    assert_eq!(
        batched.health().retired_pages(),
        serial.health().retired_pages()
    );
    assert_eq!(
        batched.health().faulty_snapshot(),
        serial.health().faulty_snapshot()
    );
    assert_eq!(
        serde_json::to_string(batched.event_log()).unwrap(),
        serde_json::to_string(serial.event_log()).unwrap()
    );
    for (c, loc) in &all_locs {
        assert_eq!(
            batched.raw_view(*c, loc),
            serial.raw_view(*c, loc),
            "stored bytes diverged at channel {c} {loc:?}"
        );
    }
    assert_eq!(
        batched.audit_parity_consistency(),
        serial.audit_parity_consistency()
    );
}

/// An empty batch is a no-op that still returns an empty result set.
#[test]
fn write_lines_empty_batch() {
    let mut m = mem(2);
    let before = *m.stats();
    assert!(m.write_lines(&[]).is_empty());
    assert_eq!(*m.stats(), before);
}
