//! Exhaustive layout verification at realistic scale: the parity-group
//! partition and parity-address injectivity hold for every channel count
//! the paper's Table II uses (4, 5, 8, 10), over full banks.

use ecc_parity::layout::{GroupId, LineLoc, ParityLayout};
use std::collections::{HashMap, HashSet};

#[test]
fn partition_and_addresses_for_every_table2_channel_count() {
    for (channels, r_num, r_den) in [(4usize, 1u32, 4u32), (5, 1, 2), (8, 1, 4), (10, 1, 2)] {
        let rows = 3 * (channels as u32 - 1);
        let l = ParityLayout::new(channels, 4, rows, 8, r_num, r_den);

        // 1. every line is in exactly one group; no group holds two lines
        //    of one channel; nobody joins their parity channel's group.
        let mut membership: HashMap<GroupId, HashSet<usize>> = HashMap::new();
        for c in 0..channels {
            for bank in 0..l.banks {
                for row in 0..l.data_rows {
                    for line in 0..l.lines_per_row {
                        let loc = LineLoc { bank, row, line };
                        let g = l.group_of(c, &loc);
                        assert_ne!(g.g, c);
                        assert!(membership.entry(g).or_default().insert(c));
                    }
                }
            }
        }
        for (g, members) in &membership {
            assert!(members.len() < channels, "{channels}ch {g:?}");
        }

        // 2. parity addresses are injective per channel and live above the
        //    data rows.
        let mut used: HashSet<(usize, usize, u32, u32, usize)> = HashSet::new();
        for g in membership.keys() {
            let (bank, row, line, slot) = l.parity_address(g);
            assert!(row >= l.data_rows);
            assert!(
                used.insert((g.g, bank, row, line, slot)),
                "{channels}ch: address collision for {g:?}"
            );
        }

        // 3. the reserved-row count tracks the closed form R/(N-1).
        let closed = (r_num as f64 / r_den as f64) / (channels as f64 - 1.0);
        let measured = l.parity_capacity_overhead();
        assert!(
            (measured - closed).abs() < closed * 0.6 + 0.02,
            "{channels}ch: measured {measured} vs closed {closed}"
        );
    }
}

#[test]
fn members_always_within_one_block_and_same_bank_line() {
    // The failure-domain argument (two channels failing at the same
    // relative location defeat one group) requires members to share bank
    // and line offset, with rows within one block of N-1.
    for channels in [3usize, 6, 9] {
        let l = ParityLayout::new(channels, 2, 4 * (channels as u32 - 1), 4, 1, 4);
        for bank in 0..l.banks {
            for block in 0..l.blocks_per_bank() {
                for line in 0..l.lines_per_row {
                    for g in 0..channels {
                        let gid = GroupId {
                            bank,
                            block,
                            line,
                            g,
                        };
                        let members = l.members(&gid);
                        for (_, loc) in &members {
                            assert_eq!(loc.bank, bank);
                            assert_eq!(loc.line, line);
                            assert_eq!(loc.row / l.block_rows(), block);
                        }
                    }
                }
            }
        }
    }
}
