//! Event log: a bounded record of every resilience action the memory takes
//! (detections, corrections, retirements, migrations, uncorrectables).
//!
//! Real RAS stacks expose exactly this (e.g. via machine-check telemetry);
//! operators use it to correlate error storms with devices and to audit
//! that the policy engine (§III-C) behaved. The log is a ring buffer so a
//! pathological error storm cannot exhaust memory.

use crate::layout::LineLoc;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// How a detected error was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrectionPath {
    /// Reconstructed correction bits from the ECC parity (Fig 6 step C).
    ParityReconstruction,
    /// Used the stored ECC line of a migrated pair (step B).
    StoredEccLine,
    /// Could not be corrected.
    Failed,
}

/// One logged resilience event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemEvent {
    /// A read or scrub found an inconsistent line and corrected it.
    ErrorDetected {
        /// Channel of the faulty line.
        channel: usize,
        /// Location of the faulty line within the channel.
        loc: LineLoc,
        /// Which correction resource resolved it.
        resolved: CorrectionPath,
    },
    /// The OS retired the physical page containing an error.
    PageRetired {
        /// Channel of the retired page.
        channel: usize,
        /// Bank of the retired page.
        bank: usize,
        /// Row (page) retired.
        row: u32,
    },
    /// A bank pair crossed the error threshold and moved to stored ECC.
    PairMigrated {
        /// Channel of the migrated pair.
        channel: usize,
        /// Pair index (banks `2*pair` and `2*pair+1`).
        pair: usize,
    },
    /// An error exceeded the scheme's correction capability.
    Uncorrectable {
        /// Channel of the lost line.
        channel: usize,
        /// Location of the lost line.
        loc: LineLoc,
    },
}

/// Bounded event log (ring buffer with a monotone sequence counter).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventLog {
    capacity: usize,
    next_seq: u64,
    events: VecDeque<(u64, MemEvent)>,
}

impl EventLog {
    /// An empty log keeping at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> EventLog {
        assert!(capacity >= 1);
        EventLog {
            capacity,
            next_seq: 0,
            events: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Append an event, evicting the oldest when full. Returns its sequence
    /// number.
    pub fn push(&mut self, event: MemEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back((seq, event));
        seq
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, MemEvent)> {
        self.events.iter()
    }

    /// Total events ever logged (including evicted ones).
    pub fn total_logged(&self) -> u64 {
        self.next_seq
    }

    /// Events dropped by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.events.len() as u64
    }

    /// Count retained events matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&MemEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }
}

impl Default for EventLog {
    /// A generous default bound: plenty for tests and simulations, finite
    /// under error storms.
    fn default() -> Self {
        EventLog::new(64 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(row: u32) -> MemEvent {
        MemEvent::PageRetired {
            channel: 0,
            bank: 1,
            row,
        }
    }

    #[test]
    fn sequences_are_monotone_and_retained_in_order() {
        let mut log = EventLog::new(8);
        for i in 0..5 {
            assert_eq!(log.push(ev(i)), i as u64);
        }
        let seqs: Vec<u64> = log.events().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = EventLog::new(3);
        for i in 0..10 {
            log.push(ev(i));
        }
        let seqs: Vec<u64> = log.events().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(log.total_logged(), 10);
        assert_eq!(log.dropped(), 7);
    }

    #[test]
    fn count_filters_by_kind() {
        let mut log = EventLog::new(16);
        log.push(ev(1));
        log.push(MemEvent::PairMigrated {
            channel: 2,
            pair: 0,
        });
        log.push(ev(2));
        assert_eq!(log.count(|e| matches!(e, MemEvent::PageRetired { .. })), 2);
        assert_eq!(log.count(|e| matches!(e, MemEvent::PairMigrated { .. })), 1);
    }
}
