//! Bank-pair health tracking (paper §III-B, §III-C).
//!
//! Tracking the kind of correction resource (parity vs stored ECC bits) per
//! line would be prohibitive, so the paper tracks it per **pair of banks in
//! the same channel**. Each pair has a small saturating error counter:
//!
//! * a detected error increments the pair's counter and retires the
//!   physical page containing it (plus every page sharing its parities —
//!   the caller handles that set, since it needs the layout);
//! * when the counter reaches the threshold (default 4), the pair is marked
//!   **faulty**: the caller must migrate the pair's correction bits into
//!   memory and stop using parities for it.
//!
//! The on-chip cost is half a byte per pair: 512 B of SRAM covers a 512 GB
//! system with 1024 banks (§III-E).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A bank pair within one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairId {
    /// Channel the pair belongs to.
    pub channel: usize,
    /// Pair index: banks `2*pair` and `2*pair + 1`.
    pub pair: usize,
}

/// What the caller must do after recording an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthAction {
    /// Retire the error's page (and its parity-sharing peers).
    RetirePage,
    /// Counter just saturated: migrate the pair to stored ECC bits.
    MigratePair,
    /// Pair already migrated; nothing further.
    AlreadyFaulty,
}

/// The health table: counters + faulty markings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthTable {
    channels: usize,
    pairs_per_channel: usize,
    threshold: u8,
    counters: Vec<u8>,
    faulty: Vec<bool>,
    /// Retired physical pages: (channel, bank, row).
    retired: HashSet<(usize, usize, u32)>,
}

impl HealthTable {
    /// An all-healthy table for `channels` x `banks_per_channel` banks.
    pub fn new(channels: usize, banks_per_channel: usize, threshold: u8) -> Self {
        assert!(banks_per_channel.is_multiple_of(2));
        assert!(threshold >= 1);
        let pairs_per_channel = banks_per_channel / 2;
        HealthTable {
            channels,
            pairs_per_channel,
            threshold,
            counters: vec![0; channels * pairs_per_channel],
            faulty: vec![false; channels * pairs_per_channel],
            retired: HashSet::new(),
        }
    }

    /// The migration threshold (paper default: 4).
    pub fn threshold(&self) -> u8 {
        self.threshold
    }

    /// Number of channels this table tracks.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Banks per channel (twice the pair count).
    pub fn banks_per_channel(&self) -> usize {
        self.pairs_per_channel * 2
    }

    /// Bank pairs per channel.
    pub fn pairs_per_channel(&self) -> usize {
        self.pairs_per_channel
    }

    /// Sum of the error counters of pairs that have **not** migrated —
    /// the fleet-health "pressure" statistic: counts still walking toward
    /// the threshold. Migrated pairs are excluded because their counters
    /// are frozen at the threshold and no longer represent risk (the pair
    /// already fell back to stored correction bits).
    pub fn active_counter_sum(&self) -> u64 {
        self.counters
            .iter()
            .zip(&self.faulty)
            .filter(|&(_, &f)| !f)
            .map(|(&c, _)| u64::from(c))
            .sum()
    }

    /// Number of pairs marked faulty (migrated to stored ECC bits).
    pub fn faulty_pair_count(&self) -> usize {
        self.faulty.iter().filter(|&&f| f).count()
    }

    /// Does `channel` contain any migrated (faulty) pair?
    pub fn channel_has_faulty_pair(&self, channel: usize) -> bool {
        assert!(channel < self.channels);
        let base = channel * self.pairs_per_channel;
        self.faulty[base..base + self.pairs_per_channel]
            .iter()
            .any(|&f| f)
    }

    /// Highest non-migrated pair counter in `channel` (0 when every pair
    /// is clean or everything already migrated).
    pub fn max_active_counter_in_channel(&self, channel: usize) -> u8 {
        assert!(channel < self.channels);
        let base = channel * self.pairs_per_channel;
        self.counters[base..base + self.pairs_per_channel]
            .iter()
            .zip(&self.faulty[base..base + self.pairs_per_channel])
            .filter(|&(_, &f)| !f)
            .map(|(&c, _)| c)
            .max()
            .unwrap_or(0)
    }

    /// Retired pages within `channel`, counted without materializing the
    /// sorted page list.
    pub fn retired_count_in_channel(&self, channel: usize) -> usize {
        self.retired
            .iter()
            .filter(|&&(ch, _, _)| ch == channel)
            .count()
    }

    fn idx(&self, p: PairId) -> usize {
        assert!(p.channel < self.channels && p.pair < self.pairs_per_channel);
        p.channel * self.pairs_per_channel + p.pair
    }

    /// Pair of a bank.
    pub fn pair_of(&self, channel: usize, bank: usize) -> PairId {
        PairId {
            channel,
            pair: bank / 2,
        }
    }

    /// Step A1/A2 of Fig 6: is the bank's pair recorded faulty? (On real
    /// hardware this is the on-chip SRAM lookup done in parallel with the
    /// memory access.)
    pub fn is_faulty(&self, channel: usize, bank: usize) -> bool {
        self.faulty[self.idx(self.pair_of(channel, bank))]
    }

    /// Record a detected error in `bank` of `channel`. Returns the action
    /// the memory controller / OS must take.
    pub fn record_error(&mut self, channel: usize, bank: usize) -> HealthAction {
        let id = self.idx(self.pair_of(channel, bank));
        if self.faulty[id] {
            return HealthAction::AlreadyFaulty;
        }
        self.counters[id] = self.counters[id].saturating_add(1);
        obs::counter!("health.errors_recorded").inc();
        if obs::trace::enabled() {
            obs::trace::event(
                "health.counter",
                &[
                    ("channel", obs::trace::Value::U64(channel as u64)),
                    ("pair", obs::trace::Value::U64((bank / 2) as u64)),
                    ("count", obs::trace::Value::U64(self.counters[id] as u64)),
                    ("threshold", obs::trace::Value::U64(self.threshold as u64)),
                ],
            );
        }
        if self.counters[id] >= self.threshold {
            self.faulty[id] = true;
            obs::counter!("health.pairs_migrated").inc();
            obs::trace::event(
                "health.pair_migrated",
                &[
                    ("channel", obs::trace::Value::U64(channel as u64)),
                    ("pair", obs::trace::Value::U64((bank / 2) as u64)),
                ],
            );
            HealthAction::MigratePair
        } else {
            HealthAction::RetirePage
        }
    }

    /// Directly mark a pair faulty (used when external diagnosis, e.g. a
    /// scrub sweep classifying a whole-bank fault, bypasses the counter).
    pub fn mark_faulty(&mut self, p: PairId) {
        let id = self.idx(p);
        if !self.faulty[id] {
            obs::counter!("health.pairs_migrated").inc();
            obs::trace::event(
                "health.pair_migrated",
                &[
                    ("channel", obs::trace::Value::U64(p.channel as u64)),
                    ("pair", obs::trace::Value::U64(p.pair as u64)),
                ],
            );
        }
        self.faulty[id] = true;
        self.counters[id] = self.threshold;
    }

    /// Current error count of a pair.
    pub fn counter(&self, p: PairId) -> u8 {
        self.counters[self.idx(p)]
    }

    /// Retire one physical page.
    pub fn retire_page(&mut self, channel: usize, bank: usize, row: u32) {
        if self.retired.insert((channel, bank, row)) {
            obs::counter!("health.pages_retired").inc();
        }
    }

    /// Has this physical page been retired?
    pub fn is_retired(&self, channel: usize, bank: usize, row: u32) -> bool {
        self.retired.contains(&(channel, bank, row))
    }

    /// Number of pages retired so far.
    pub fn retired_count(&self) -> usize {
        self.retired.len()
    }

    /// All retired pages as `(channel, bank, row)`, in sorted order (the
    /// resilience soak compares successive snapshots, so the order must be
    /// deterministic).
    pub fn retired_pages(&self) -> Vec<(usize, usize, u32)> {
        let mut out: Vec<_> = self.retired.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Per-pair error counters, indexed `channel * pairs_per_channel + pair`
    /// (snapshot for monotonicity auditing).
    pub fn counters_snapshot(&self) -> Vec<u8> {
        self.counters.clone()
    }

    /// Per-pair faulty flags, same indexing as [`Self::counters_snapshot`].
    pub fn faulty_snapshot(&self) -> Vec<bool> {
        self.faulty.clone()
    }

    /// All faulty pairs.
    pub fn faulty_pairs(&self) -> Vec<PairId> {
        let mut out = vec![];
        for channel in 0..self.channels {
            for pair in 0..self.pairs_per_channel {
                let p = PairId { channel, pair };
                if self.faulty[self.idx(p)] {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Fraction of system capacity in faulty pairs (the Fig 8 statistic).
    pub fn faulty_fraction(&self) -> f64 {
        let total = (self.channels * self.pairs_per_channel) as f64;
        self.faulty_pairs().len() as f64 / total
    }

    /// On-chip SRAM bytes this table needs (§III-E: 0.5 B per pair).
    pub fn sram_bytes(&self) -> usize {
        (self.channels * self.pairs_per_channel).div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_reaches_threshold_then_migrates() {
        let mut h = HealthTable::new(4, 8, 4);
        for i in 0..3 {
            assert_eq!(
                h.record_error(1, 4),
                HealthAction::RetirePage,
                "error {i} below threshold retires a page"
            );
            assert!(!h.is_faulty(1, 4));
        }
        assert_eq!(h.record_error(1, 4), HealthAction::MigratePair);
        assert!(h.is_faulty(1, 4));
        assert!(h.is_faulty(1, 5), "partner bank shares the pair state");
        assert!(!h.is_faulty(1, 6));
        assert_eq!(h.record_error(1, 5), HealthAction::AlreadyFaulty);
    }

    #[test]
    fn errors_in_different_banks_of_a_pair_share_the_counter() {
        // Paper: "the combined number of errors encountered in a pair of
        // banks in the same channel".
        let mut h = HealthTable::new(2, 4, 4);
        h.record_error(0, 2);
        h.record_error(0, 3);
        h.record_error(0, 2);
        assert_eq!(h.record_error(0, 3), HealthAction::MigratePair);
    }

    #[test]
    fn counters_are_per_pair_and_per_channel() {
        let mut h = HealthTable::new(2, 4, 2);
        h.record_error(0, 0);
        h.record_error(1, 0);
        assert_eq!(
            h.counter(PairId {
                channel: 0,
                pair: 0
            }),
            1
        );
        assert_eq!(
            h.counter(PairId {
                channel: 1,
                pair: 0
            }),
            1
        );
        assert_eq!(
            h.counter(PairId {
                channel: 0,
                pair: 1
            }),
            0
        );
    }

    #[test]
    fn page_retirement_bookkeeping() {
        let mut h = HealthTable::new(2, 4, 4);
        assert!(!h.is_retired(0, 1, 7));
        h.retire_page(0, 1, 7);
        assert!(h.is_retired(0, 1, 7));
        assert_eq!(h.retired_count(), 1);
        h.retire_page(0, 1, 7); // idempotent
        assert_eq!(h.retired_count(), 1);
    }

    #[test]
    fn faulty_fraction_counts_pairs() {
        let mut h = HealthTable::new(4, 8, 1);
        assert_eq!(h.faulty_fraction(), 0.0);
        h.record_error(2, 6); // threshold 1: immediate migration
        assert_eq!(
            h.faulty_pairs(),
            vec![PairId {
                channel: 2,
                pair: 3
            }]
        );
        assert!((h.faulty_fraction() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn sram_budget_matches_paper() {
        // §III-E: 1024 banks -> 512 pairs... the paper says 0.5B per *pair
        // of banks* and 512B for 1024 banks; with 8 channels x 128 banks:
        let h = HealthTable::new(8, 128, 4);
        assert_eq!(h.sram_bytes(), 256); // 512 pairs * 0.5B
    }

    #[test]
    fn counter_saturates_exactly_at_threshold() {
        // The counter must land exactly on the threshold when the pair
        // migrates (mark/migrate agree on the stored value), and stay there:
        // a faulty pair's counter never moves again.
        let mut h = HealthTable::new(2, 4, 3);
        let p = PairId {
            channel: 0,
            pair: 1,
        };
        h.record_error(0, 2);
        h.record_error(0, 3);
        assert_eq!(h.counter(p), 2);
        assert_eq!(h.record_error(0, 2), HealthAction::MigratePair);
        assert_eq!(h.counter(p), 3, "counter stops exactly at the threshold");
        assert_eq!(h.record_error(0, 3), HealthAction::AlreadyFaulty);
        assert_eq!(h.counter(p), 3, "faulty pair counter is frozen");
    }

    #[test]
    fn counter_saturating_add_at_u8_max() {
        // A threshold of 255 exercises the u8 saturation edge: the counter
        // must reach 255 (and migrate) without wrapping.
        let mut h = HealthTable::new(1, 2, u8::MAX);
        for _ in 0..254 {
            assert_eq!(h.record_error(0, 0), HealthAction::RetirePage);
        }
        assert_eq!(
            h.counter(PairId {
                channel: 0,
                pair: 0
            }),
            254
        );
        assert_eq!(h.record_error(0, 1), HealthAction::MigratePair);
        assert_eq!(
            h.counter(PairId {
                channel: 0,
                pair: 0
            }),
            255
        );
    }

    #[test]
    fn record_error_on_already_retired_page_still_counts() {
        // Retirement is page-granular; the counter is pair-granular. An
        // error on an already-retired page (e.g. a scrub racing the OS
        // unmapping it) must still advance the pair toward migration and
        // must leave the retirement set untouched.
        let mut h = HealthTable::new(2, 4, 4);
        h.retire_page(0, 2, 9);
        assert!(h.is_retired(0, 2, 9));
        assert_eq!(h.record_error(0, 2), HealthAction::RetirePage);
        h.retire_page(0, 2, 9); // caller re-retires idempotently
        assert_eq!(h.retired_count(), 1);
        assert_eq!(
            h.counter(PairId {
                channel: 0,
                pair: 1
            }),
            1
        );
        assert!(h.is_retired(0, 2, 9), "retirement is permanent");
    }

    #[test]
    fn serde_roundtrip_of_partially_migrated_table() {
        // A table mid-life: one pair migrated, another with a nonzero
        // counter, several retired pages. Everything must survive a JSON
        // round trip (checkpoint/restore of controller state).
        let mut h = HealthTable::new(4, 8, 4);
        for _ in 0..4 {
            h.record_error(1, 4); // pair (1,2) migrates
        }
        h.record_error(2, 0); // pair (2,0) at count 1
        h.retire_page(1, 4, 3);
        h.retire_page(2, 0, 7);
        h.retire_page(3, 5, 0);
        let json = serde_json::to_string(&h).unwrap();
        let mut back: HealthTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.threshold(), h.threshold());
        assert_eq!(back.counters_snapshot(), h.counters_snapshot());
        assert_eq!(back.faulty_snapshot(), h.faulty_snapshot());
        assert_eq!(back.retired_pages(), h.retired_pages());
        assert!(back.is_faulty(1, 4) && back.is_faulty(1, 5));
        assert!(!back.is_faulty(2, 0));
        assert_eq!(
            back.counter(PairId {
                channel: 2,
                pair: 0
            }),
            1
        );
        assert_eq!(back.retired_count(), 3);
        assert_eq!(
            back.record_error(2, 1),
            HealthAction::RetirePage,
            "restored table keeps counting from where it left off"
        );
    }

    #[test]
    fn fleet_summary_accessors() {
        let mut h = HealthTable::new(4, 8, 4);
        assert_eq!(h.channels(), 4);
        assert_eq!(h.banks_per_channel(), 8);
        assert_eq!(h.pairs_per_channel(), 4);
        assert_eq!(h.active_counter_sum(), 0);
        assert_eq!(h.faulty_pair_count(), 0);

        h.record_error(1, 4); // pair (1,2) at 1
        h.record_error(1, 0); // pair (1,0) at 1
        h.record_error(2, 6); // pair (2,3) at 1
        assert_eq!(h.active_counter_sum(), 3);
        assert_eq!(h.max_active_counter_in_channel(1), 1);
        assert_eq!(h.max_active_counter_in_channel(0), 0);

        for _ in 0..3 {
            h.record_error(1, 4); // drive pair (1,2) to migration
        }
        assert_eq!(h.faulty_pair_count(), 1);
        assert!(h.channel_has_faulty_pair(1));
        assert!(!h.channel_has_faulty_pair(2));
        // Migrated pair's frozen counter no longer counts as pressure.
        assert_eq!(h.active_counter_sum(), 2);
        assert_eq!(h.max_active_counter_in_channel(1), 1);

        h.retire_page(1, 4, 9);
        h.retire_page(2, 6, 3);
        h.retire_page(2, 7, 3);
        assert_eq!(h.retired_count_in_channel(1), 1);
        assert_eq!(h.retired_count_in_channel(2), 2);
        assert_eq!(h.retired_count_in_channel(0), 0);
    }

    #[test]
    fn mark_faulty_bypasses_counter() {
        let mut h = HealthTable::new(2, 4, 4);
        h.mark_faulty(PairId {
            channel: 1,
            pair: 1,
        });
        assert!(h.is_faulty(1, 2));
        assert!(h.is_faulty(1, 3));
        assert_eq!(h.record_error(1, 2), HealthAction::AlreadyFaulty);
    }
}
