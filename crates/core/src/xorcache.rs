//! XOR-cacheline compaction (paper §III-D, borrowed from Multi-ECC \[13\]).
//!
//! Updating an ECC parity for a dirty writeback needs
//! `ECCP_new = ECCP_old ⊕ ECC_old ⊕ ECC_new` (equation 1) — naively a
//! read-modify-write of the parity line per writeback. The optimization
//! compacts into a single LLC cacheline the XOR `ECC_old ⊕ ECC_new` of
//! *all* dirty lines protected by the same parity line; only when that XOR
//! cacheline is evicted does memory see one parity-line read plus one
//! write. The XOR cacheline takes the physical address of its parity line.
//!
//! This model is functional (deltas really accumulate and flush) and also
//! reports the traffic statistics the bandwidth figures need (hits, misses,
//! evictions).

use crate::layout::GroupId;
use std::collections::HashMap;

/// Statistics of XOR-cacheline behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XorCacheStats {
    /// Delta merges that found their XOR cacheline resident.
    pub hits: u64,
    /// Delta merges that allocated a new XOR cacheline (no memory traffic:
    /// the line starts as the zero delta).
    pub allocations: u64,
    /// Evictions — each costs one parity read + one parity write in memory.
    pub evictions: u64,
}

/// A bounded cache of XOR cachelines keyed by parity group.
///
/// Eviction is LRU. Capacity is in cachelines; the real system shares the
/// LLC with data (modeled in `mem-sim`) — this standalone version is for
/// functional verification and the ablation bench.
///
/// ```
/// use ecc_parity::layout::GroupId;
/// use ecc_parity::xorcache::XorCache;
///
/// let g = GroupId { bank: 0, block: 0, line: 0, g: 1 };
/// let mut cache = XorCache::new(16);
/// assert!(cache.merge(g, &[0x0F]).is_none()); // allocate: no memory traffic
/// assert!(cache.merge(g, &[0xF0]).is_none()); // merge: deltas XOR together
/// assert_eq!(cache.flush_all(), vec![(g, vec![0xFF])]);
/// ```
pub struct XorCache {
    capacity: usize,
    /// group -> (delta, last-use stamp)
    lines: HashMap<GroupId, (Vec<u8>, u64)>,
    clock: u64,
    stats: XorCacheStats,
}

impl XorCache {
    /// An empty cache holding at most `capacity` XOR cachelines.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        XorCache {
            capacity,
            lines: HashMap::new(),
            clock: 0,
            stats: XorCacheStats::default(),
        }
    }

    /// Hit/allocation/eviction counters since construction.
    pub fn stats(&self) -> &XorCacheStats {
        &self.stats
    }

    /// XOR cachelines currently resident.
    pub fn resident(&self) -> usize {
        self.lines.len()
    }

    /// Merge a dirty line's `ECC_old ⊕ ECC_new` delta. Returns the evicted
    /// `(group, accumulated_delta)` if the allocation displaced a victim —
    /// the caller must apply it to the parity in memory (one read + one
    /// write).
    pub fn merge(&mut self, group: GroupId, delta: &[u8]) -> Option<(GroupId, Vec<u8>)> {
        self.clock += 1;
        if let Some((acc, stamp)) = self.lines.get_mut(&group) {
            for (a, d) in acc.iter_mut().zip(delta) {
                *a ^= d;
            }
            *stamp = self.clock;
            self.stats.hits += 1;
            obs::counter!("xorcache.hits").inc();
            return None;
        }
        self.stats.allocations += 1;
        obs::counter!("xorcache.allocations").inc();
        let mut evicted = None;
        if self.lines.len() >= self.capacity {
            let victim = *self
                .lines
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(g, _)| g)
                .expect("cache nonempty");
            let (acc, _) = self.lines.remove(&victim).unwrap();
            self.stats.evictions += 1;
            obs::counter!("xorcache.evictions").inc();
            evicted = Some((victim, acc));
        }
        self.lines.insert(group, (delta.to_vec(), self.clock));
        evicted
    }

    /// Flush everything (e.g. at shutdown or before migration recomputes
    /// parities): every resident delta is surrendered to the caller.
    pub fn flush_all(&mut self) -> Vec<(GroupId, Vec<u8>)> {
        let mut out: Vec<(GroupId, Vec<u8>)> =
            self.lines.drain().map(|(g, (acc, _))| (g, acc)).collect();
        out.sort_by_key(|(g, _)| *g);
        self.stats.evictions += out.len() as u64;
        obs::counter!("xorcache.evictions").add(out.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gid(bank: usize, block: u32) -> GroupId {
        GroupId {
            bank,
            block,
            line: 0,
            g: 0,
        }
    }

    #[test]
    fn deltas_accumulate_by_xor() {
        let mut c = XorCache::new(4);
        assert!(c.merge(gid(0, 0), &[0x0f, 0xf0]).is_none());
        assert!(c.merge(gid(0, 0), &[0xff, 0xff]).is_none());
        let flushed = c.flush_all();
        assert_eq!(flushed, vec![(gid(0, 0), vec![0xf0, 0x0f])]);
    }

    #[test]
    fn merging_twice_cancels() {
        // ECC_old ^ ECC_new applied twice with the same pair cancels —
        // exactly why a delta cache is safe.
        let mut c = XorCache::new(4);
        c.merge(gid(1, 0), &[0xaa]);
        c.merge(gid(1, 0), &[0xaa]);
        assert_eq!(c.flush_all(), vec![(gid(1, 0), vec![0x00])]);
    }

    #[test]
    fn lru_eviction_surrenders_victim_delta() {
        let mut c = XorCache::new(2);
        c.merge(gid(0, 0), &[1]);
        c.merge(gid(1, 0), &[2]);
        c.merge(gid(0, 0), &[4]); // touch group 0: group 1 becomes LRU
        let evicted = c.merge(gid(2, 0), &[8]).expect("must evict");
        assert_eq!(evicted, (gid(1, 0), vec![2]));
        assert_eq!(c.resident(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().allocations, 3);
    }

    #[test]
    fn equivalence_with_direct_parity_updates() {
        // Applying deltas through the cache (with arbitrary eviction times)
        // must leave the parity identical to applying them directly.
        let mut direct = vec![0u8; 4];
        let mut via_cache = vec![0u8; 4];
        let mut c = XorCache::new(2);
        let deltas: Vec<(GroupId, Vec<u8>)> = (0..40u32)
            .map(|i| {
                (
                    gid((i % 5) as usize, 0),
                    vec![i as u8, (i * 7) as u8, (i * 13) as u8, 1],
                )
            })
            .collect();
        for (g, d) in &deltas {
            if *g == gid(0, 0) {
                for (a, b) in direct.iter_mut().zip(d) {
                    *a ^= b;
                }
            }
            if let Some((eg, acc)) = c.merge(*g, d) {
                if eg == gid(0, 0) {
                    for (a, b) in via_cache.iter_mut().zip(&acc) {
                        *a ^= b;
                    }
                }
            }
        }
        for (eg, acc) in c.flush_all() {
            if eg == gid(0, 0) {
                for (a, b) in via_cache.iter_mut().zip(&acc) {
                    *a ^= b;
                }
            }
        }
        assert_eq!(direct, via_cache);
    }

    #[test]
    fn allocation_costs_no_memory_read() {
        // The delta line starts at zero: unlike caching the parity itself,
        // allocating a XOR cacheline needs no fill from memory.
        let mut c = XorCache::new(8);
        for i in 0..8 {
            assert!(c.merge(gid(i, 0), &[i as u8]).is_none());
        }
        assert_eq!(c.stats().allocations, 8);
        assert_eq!(c.stats().evictions, 0);
    }
}
