//! # ecc-parity — the paper's contribution
//!
//! *"ECC Parity: A Technique for Efficient Memory Error Resilience for
//! Multi-Channel Memory Systems"* (Jian & Kumar, SC 2014) observes that
//! memory channels fail independently, so error **correction** resources are
//! normally needed for only one channel at a time. Instead of storing every
//! channel's ECC correction bits, this crate stores one cross-channel
//! bitwise XOR of them — the **ECC parity** — and reconstructs a faulty
//! channel's correction bits on demand from the parity plus the (clean)
//! other channels. Detection bits stay inline per channel so every read is
//! still checked on the fly.
//!
//! Components:
//!
//! * [`layout`] — parity-group construction and physical placement: groups
//!   of N−1 lines from N−1 different channels (rotated RAID-5 style, Fig 3),
//!   parities packed into rows reserved at the top of every bank (Fig 4),
//!   and the cross-bank ECC-line layout used after migration (Fig 5).
//! * [`health`] — the bank-pair health table: per-pair error counters with
//!   threshold (default 4), page retirement for small faults, and the
//!   faulty-pair marking that triggers migration (§III-B/III-C).
//! * [`memory`] — a *functional* multi-channel memory: real bytes, real
//!   codes, real fault overlays. Implements the paper's read path (steps
//!   A1/B/C of Fig 6), write path (A2/D/E, parity update equation (1)),
//!   the scrubber, and migration of faulty bank pairs to stored ECC
//!   correction bits.
//! * [`events`] — a bounded RAS event log (detections, retirements,
//!   migrations, uncorrectables) like real machine-check telemetry.
//! * [`xorcache`] — the LLC XOR-cacheline compaction of §III-D: dirty
//!   lines' `ECC_old ⊕ ECC_new` accumulate in cachelines addressed by
//!   parity line, halving parity-update traffic.

#![warn(missing_docs)]

pub mod events;
pub mod health;
pub mod layout;
pub mod memory;
pub mod xorcache;

pub use events::{CorrectionPath, EventLog, MemEvent};
pub use health::{HealthAction, HealthTable, PairId};
pub use layout::{GroupId, LineLoc, ParityLayout};
pub use memory::{MemError, ParityConfig, ParityMemory, ScrubReport};
pub use xorcache::XorCache;
