//! ECC parity group construction and physical layout (paper §III-A, Figs 3–5).
//!
//! ## Grouping
//!
//! With `N` channels, data rows are organized in blocks of `N-1` consecutive
//! rows. Within one block (and one bank and one line-offset), the `N·(N-1)`
//! lines — `N-1` rows in each of `N` channels — partition into `N` groups of
//! `N-1` lines such that:
//!
//! * every group has **at most one line per channel** (a single-channel
//!   fault touches at most one member), and
//! * group `g`'s parity is stored in channel `g`, which contributes **no
//!   member** to the group (so the parity does not share a failure domain
//!   with any member).
//!
//! The assignment is the classic "skip own channel" bijection: the line at
//! block-row `j` of channel `c` belongs to group `g = j + (j >= c) as usize`,
//! and conversely group `g` takes from each channel `c != g` its block-row
//! `j = g - (c < g) as usize`. Members sit in the *same relative location*
//! up to a row within the block, preserving the paper's failure semantics:
//! two channels failing at the same relative location defeat the parity.
//!
//! ## Placement
//!
//! Parities are packed into rows reserved at the top of every bank
//! (`Fig 4`): each parity is `R` of a line, so one reserved row holds
//! parities for `(N-1)/R` data rows, and the reserved share of each bank is
//! `R/(N-1)` of its data rows. After a bank pair is marked faulty, its ECC
//! correction bits are stored cross-bank within the pair (`Fig 5`): bank
//! `2k`'s ECC lines live in bank `2k+1` and vice versa, letting a data read
//! and its ECC-line read overlap in time.

use serde::{Deserialize, Serialize};

/// A line location within one channel: bank, row, line-within-row.
/// (Ranks are folded into the bank index: the health table and layout care
/// about *banks of a channel*, however they spread over ranks.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LineLoc {
    /// Bank within the channel (ranks folded in).
    pub bank: usize,
    /// Row within the bank.
    pub row: u32,
    /// Line within the row.
    pub line: u32,
}

/// Identifies one parity group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId {
    /// Bank within the channel.
    pub bank: usize,
    /// Row-block index (blocks of N-1 rows).
    pub block: u32,
    /// Line within the row.
    pub line: u32,
    /// Group index within the block == the channel storing the parity.
    pub g: usize,
}

/// Layout calculator for one machine shape.
///
/// ```
/// use ecc_parity::layout::{LineLoc, ParityLayout};
///
/// // 8 channels, LOT-ECC5's R = 1/4
/// let layout = ParityLayout::new(8, 8, 28, 64, 1, 4);
/// let loc = LineLoc { bank: 0, row: 3, line: 5 };
/// let group = layout.group_of(2, &loc);
/// // a line never shares a group with the channel storing its parity
/// assert_ne!(group.g, 2);
/// // and the group has one member per other channel
/// assert_eq!(layout.members(&group).len(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityLayout {
    /// Channels in the system.
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Data rows per bank (excluding reserved parity rows).
    pub data_rows: u32,
    /// Lines per DRAM row.
    pub lines_per_row: u32,
    /// Correction-bit size as a fraction of the line size, the paper's `R`
    /// expressed as (numerator, denominator) to keep address math exact
    /// (e.g. (1,4) for LOT-ECC5, (1,2) for RAIM).
    pub r_num: u32,
    /// Denominator of `R` (see [`ParityLayout::r_num`]).
    pub r_den: u32,
}

impl ParityLayout {
    /// A layout for the given machine shape and correction ratio
    /// `r_num / r_den`.
    pub fn new(
        channels: usize,
        banks: usize,
        data_rows: u32,
        lines_per_row: u32,
        r_num: u32,
        r_den: u32,
    ) -> Self {
        assert!(channels >= 2, "ECC parity requires at least 2 channels");
        assert!(banks >= 2 && banks.is_multiple_of(2), "banks must pair up");
        assert!(r_num > 0 && r_den > 0 && r_num <= r_den);
        Self {
            channels,
            banks,
            data_rows,
            lines_per_row,
            r_num,
            r_den,
        }
    }

    /// Rows per block: one block spans N-1 data rows.
    pub fn block_rows(&self) -> u32 {
        (self.channels - 1) as u32
    }

    /// Number of complete blocks per bank (trailing partial blocks are
    /// covered by padding the block with absent members).
    pub fn blocks_per_bank(&self) -> u32 {
        self.data_rows.div_ceil(self.block_rows())
    }

    /// The parity group of a data line in channel `channel`.
    pub fn group_of(&self, channel: usize, loc: &LineLoc) -> GroupId {
        assert!(channel < self.channels);
        assert!(loc.bank < self.banks);
        assert!(loc.row < self.data_rows);
        let block = loc.row / self.block_rows();
        let j = (loc.row % self.block_rows()) as usize;
        let g = if j >= channel { j + 1 } else { j };
        GroupId {
            bank: loc.bank,
            block,
            line: loc.line,
            g,
        }
    }

    /// The channel that stores a group's parity.
    pub fn parity_channel(&self, group: &GroupId) -> usize {
        group.g
    }

    /// Members of a group: `(channel, loc)` for every channel except the
    /// parity channel. Rows past the end of a partial trailing block are
    /// omitted.
    pub fn members(&self, group: &GroupId) -> Vec<(usize, LineLoc)> {
        let mut out = Vec::with_capacity(self.channels - 1);
        for c in 0..self.channels {
            if c == group.g {
                continue;
            }
            let j = if c < group.g { group.g - 1 } else { group.g } as u32;
            let row = group.block * self.block_rows() + j;
            if row >= self.data_rows {
                continue;
            }
            out.push((
                c,
                LineLoc {
                    bank: group.bank,
                    row,
                    line: group.line,
                },
            ));
        }
        out
    }

    /// Reserved parity rows needed per bank in the parity-storing channel:
    /// each reserved row packs parities for `(N-1)/R` data rows.
    /// (Paper: "Each row of ECC parities protects (N-1)/R rows of data".)
    pub fn parity_rows_per_bank(&self) -> u32 {
        // groups stored per channel per bank per line-offset:
        // blocks_per_bank (each block contributes one group to each channel)
        let groups = self.blocks_per_bank() as u64 * self.lines_per_row as u64;
        // parities per parity line: 1/R
        let per_line = (self.r_den / self.r_num) as u64;
        let parity_lines = groups.div_ceil(per_line);
        parity_lines.div_ceil(self.lines_per_row as u64) as u32
    }

    /// Static parity capacity overhead implied by the layout (should track
    /// the closed form `R/(N-1)` up to rounding).
    pub fn parity_capacity_overhead(&self) -> f64 {
        self.parity_rows_per_bank() as f64 / self.data_rows as f64
    }

    /// Where a group's parity physically lives in channel `g`:
    /// `(bank, reserved_row_index, line_in_row, byte_offset)`.
    /// Reserved rows sit above the data rows of the *same bank* the group
    /// protects; parities pack `1/R` to a line.
    pub fn parity_address(&self, group: &GroupId) -> (usize, u32, u32, usize) {
        let per_line = (self.r_den / self.r_num) as u64;
        // Order parities by (block, line): consecutive blocks of one line
        // offset share parity lines.
        let idx = group.block as u64 * self.lines_per_row as u64 + group.line as u64;
        let parity_line_idx = idx / per_line;
        let slot = (idx % per_line) as usize;
        let row = self.data_rows + (parity_line_idx / self.lines_per_row as u64) as u32;
        let line = (parity_line_idx % self.lines_per_row as u64) as u32;
        (group.bank, row, line, slot)
    }

    /// Fig 5 cross-bank ECC-line placement: the ECC correction bits of a
    /// line in a migrated bank are stored in the *partner* bank of the pair,
    /// at the same row/line coordinates (correction bits are allocated a
    /// full line's footprint — the paper's 2R rule is capacity accounting,
    /// placement is line-for-line).
    pub fn ecc_line_home(&self, loc: &LineLoc) -> LineLoc {
        LineLoc {
            bank: loc.bank ^ 1,
            row: loc.row,
            line: loc.line,
        }
    }

    /// The bank pair of a bank (paper granularity: adjacent even/odd banks
    /// of one channel).
    pub fn pair_of(&self, bank: usize) -> usize {
        bank / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn layout(n: usize) -> ParityLayout {
        ParityLayout::new(n, 4, 28, 4, 1, 4)
    }

    #[test]
    fn every_line_in_exactly_one_group() {
        for n in [2, 3, 4, 8] {
            let l = layout(n);
            let mut seen: HashMap<GroupId, HashSet<usize>> = HashMap::new();
            for c in 0..n {
                for bank in 0..l.banks {
                    for row in 0..l.data_rows {
                        for line in 0..l.lines_per_row {
                            let loc = LineLoc { bank, row, line };
                            let g = l.group_of(c, &loc);
                            assert_ne!(g.g, c, "a line never joins its parity channel's group");
                            assert!(
                                seen.entry(g).or_default().insert(c),
                                "channel {c} appears twice in {g:?}"
                            );
                        }
                    }
                }
            }
            for (g, chans) in &seen {
                assert!(
                    chans.len() < n,
                    "group {g:?} has {} members, max {}",
                    chans.len(),
                    n - 1
                );
            }
        }
    }

    #[test]
    fn members_inverse_of_group_of() {
        for n in [2, 3, 5, 8] {
            let l = layout(n);
            for bank in 0..l.banks {
                for block in 0..l.blocks_per_bank() {
                    for line in 0..l.lines_per_row {
                        for g in 0..n {
                            let gid = GroupId {
                                bank,
                                block,
                                line,
                                g,
                            };
                            for (c, loc) in l.members(&gid) {
                                assert_eq!(
                                    l.group_of(c, &loc),
                                    gid,
                                    "member ({c},{loc:?}) maps back to its group"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn full_blocks_have_n_minus_1_members() {
        let l = ParityLayout::new(8, 4, 28, 4, 1, 4); // 28 = 4 blocks of 7
        for g in 0..8 {
            let gid = GroupId {
                bank: 0,
                block: 0,
                line: 0,
                g,
            };
            assert_eq!(l.members(&gid).len(), 7);
        }
    }

    #[test]
    fn partial_trailing_block_members_are_clipped() {
        let l = ParityLayout::new(4, 2, 7, 4, 1, 4); // blocks of 3: 3+3+1
        let gid = GroupId {
            bank: 0,
            block: 2,
            line: 0,
            g: 3,
        };
        for (_, loc) in l.members(&gid) {
            assert!(loc.row < l.data_rows);
        }
    }

    #[test]
    fn parity_rows_track_closed_form() {
        // R/(N-1) for LOT-ECC5 at 8 channels: 0.25/7 = 3.57%
        let l = ParityLayout::new(8, 8, 2800, 64, 1, 4);
        let measured = l.parity_capacity_overhead();
        let closed = 0.25 / 7.0;
        assert!(
            (measured - closed).abs() < 0.01,
            "measured {measured}, closed form {closed}"
        );
        // RAIM R=0.5 at 10 channels: 0.5/9 = 5.6%
        let l = ParityLayout::new(10, 8, 2700, 64, 1, 2);
        assert!((l.parity_capacity_overhead() - 0.5 / 9.0).abs() < 0.01);
    }

    #[test]
    fn parity_addresses_do_not_collide() {
        let l = ParityLayout::new(4, 4, 27, 4, 1, 4);
        let mut used: HashSet<(usize, usize, u32, u32, usize)> = HashSet::new();
        for bank in 0..l.banks {
            for block in 0..l.blocks_per_bank() {
                for line in 0..l.lines_per_row {
                    for g in 0..l.channels {
                        let gid = GroupId {
                            bank,
                            block,
                            line,
                            g,
                        };
                        let (b, row, ln, slot) = l.parity_address(&gid);
                        assert!(row >= l.data_rows, "parity lives in reserved rows");
                        assert!(
                            used.insert((g, b, row, ln, slot)),
                            "parity slot collision for {gid:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ecc_line_home_is_partner_bank() {
        let l = layout(4);
        let loc = LineLoc {
            bank: 2,
            row: 5,
            line: 1,
        };
        let home = l.ecc_line_home(&loc);
        assert_eq!(home.bank, 3);
        assert_eq!(l.pair_of(loc.bank), l.pair_of(home.bank));
        // involution
        assert_eq!(l.ecc_line_home(&home), loc);
    }

    #[test]
    fn two_channel_layout_degenerates_to_mirrored_parity() {
        // N=2: blocks of one row; each group has a single member, parity in
        // the other channel — ECC parity degenerates to storing the full
        // correction bits (overhead R/(N-1) = R), as the paper's formula says.
        let l = ParityLayout::new(2, 2, 8, 2, 1, 4);
        for row in 0..8 {
            let loc = LineLoc {
                bank: 0,
                row,
                line: 0,
            };
            let g0 = l.group_of(0, &loc);
            assert_eq!(g0.g, 1);
            assert_eq!(l.members(&g0).len(), 1);
        }
    }
}
