//! A functional multi-channel memory protected by ECC Parity.
//!
//! This model stores real bytes and runs the real codes end to end:
//!
//! * each channel stores, per line, the **data** and its inline **detection
//!   bits** (computed by the underlying ECC at write time);
//! * **correction bits are not stored** — only the per-group XOR of them
//!   (the ECC parity), packed in the reserved region described by
//!   [`crate::layout::ParityLayout`];
//! * faults (from `mem-faults`) are *overlays*: reads through a faulty
//!   device return deterministically corrupted bytes for exactly the byte
//!   spans that device owns, while the underlying true values persist —
//!   matching real stuck-at device faults;
//! * the read path implements Fig 6 steps A1/B/C, the write path A2/D/E
//!   with parity update equation (1), and the scrubber drives the
//!   bank-pair error counters: page retirement below the threshold,
//!   migration of the pair to stored ECC lines at the threshold.
//!
//! Migrated pairs keep their corrupted devices, but every read corrects
//! through the stored ECC lines; their contribution is XORed out of every
//! parity group so the remaining channels retain single-channel protection
//! (the paper's defense against fault accumulation across channels).

use crate::events::{CorrectionPath, EventLog, MemEvent};
use crate::health::{HealthAction, HealthTable};
use crate::layout::{GroupId, LineLoc, ParityLayout};
use ecc_codes::traits::{CorrectionSplit, DetectOutcome, Region};
use mem_faults::FaultInstance;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Shape and policy knobs of a [`ParityMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityConfig {
    /// Channels in the system (one parity protects N-1 of them).
    pub channels: usize,
    /// Banks per channel (even; paired for health tracking).
    pub banks_per_channel: usize,
    /// Data rows per bank (a row models a 4KB physical page).
    pub data_rows: u32,
    /// Lines per DRAM row.
    pub lines_per_row: u32,
    /// Bank-pair error-counter threshold (paper default: 4).
    pub threshold: u8,
}

impl ParityConfig {
    /// A small functional-test configuration.
    pub fn small(channels: usize) -> ParityConfig {
        ParityConfig {
            channels,
            banks_per_channel: 4,
            data_rows: 2 * (channels as u32 - 1).max(1),
            lines_per_row: 4,
            threshold: 4,
        }
    }

    /// Data lines per bank.
    pub fn lines_per_bank(&self) -> u64 {
        self.data_rows as u64 * self.lines_per_row as u64
    }

    /// Data lines per channel.
    pub fn lines_per_channel(&self) -> u64 {
        self.banks_per_channel as u64 * self.lines_per_bank()
    }
}

/// Errors surfaced by memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The page was retired by the OS; software must not touch it.
    RetiredPage,
    /// Detected error beyond correction capability (e.g. faults in two
    /// channels at the same relative location while only parities exist).
    Uncorrectable,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::RetiredPage => write!(f, "access to a retired page"),
            MemError::Uncorrectable => write!(f, "uncorrectable memory error"),
        }
    }
}

impl std::error::Error for MemError {}

/// Outcome of one scrub sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Lines read by the sweep.
    pub lines_scanned: u64,
    /// Lines found inconsistent.
    pub errors_detected: u64,
    /// Pages retired as a consequence.
    pub pages_retired: u64,
    /// Bank pairs that crossed the threshold during the sweep.
    pub pairs_migrated: u64,
    /// Errors beyond the scheme's correction capability.
    pub uncorrectable: u64,
}

/// Operation counters (drive the traffic/energy accounting upstream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Demand reads served.
    pub reads: u64,
    /// Demand writes served.
    pub writes: u64,
    /// Reads/scrubs that detected an error.
    pub detected_errors: u64,
    /// Corrections that reconstructed correction bits from the parity
    /// (Fig 6 step C) — each costs N-2 extra member reads plus the parity.
    pub parity_reconstructions: u64,
    /// Extra line reads performed for reconstructions.
    pub reconstruction_reads: u64,
    /// Corrections served by stored ECC lines (step B path).
    pub ecc_line_corrections: u64,
    /// Parity read-modify-writes on the write path (step E).
    pub parity_updates: u64,
    /// ECC-line writes on the write path to faulty banks (step D).
    pub ecc_line_updates: u64,
    /// Bank pairs migrated to stored ECC lines.
    pub pairs_migrated: u64,
    /// Errors beyond the scheme's correction capability.
    pub uncorrectable: u64,
}

#[derive(Debug, Clone)]
struct StoredLine {
    data: Vec<u8>,
    detection: Vec<u8>,
}

/// The functional ECC-Parity memory (see module docs).
pub struct ParityMemory<S: CorrectionSplit> {
    ecc: S,
    cfg: ParityConfig,
    layout: ParityLayout,
    health: HealthTable,
    /// True stored contents per channel, flat-indexed by line.
    store: Vec<Vec<StoredLine>>,
    /// Parity per group, length = correction_bytes. Lazily materialized.
    parities: HashMap<GroupId, Vec<u8>>,
    /// Stored ECC correction bits of migrated pairs.
    ecc_lines: HashMap<(usize, LineLoc), Vec<u8>>,
    faults: Vec<FaultInstance>,
    stats: MemStats,
    log: EventLog,
}

impl<S: CorrectionSplit> ParityMemory<S> {
    /// A pristine memory protecting `cfg`-shaped channels with `ecc`,
    /// deriving the paper's `R` from the code's byte counts.
    pub fn new(ecc: S, cfg: ParityConfig) -> Self {
        // R as an exact fraction from the code's byte counts.
        let r_num = ecc.correction_bytes() as u32;
        let r_den = ecc.data_bytes() as u32;
        let layout = ParityLayout::new(
            cfg.channels,
            cfg.banks_per_channel,
            cfg.data_rows,
            cfg.lines_per_row,
            r_num,
            r_den,
        );
        let zero = vec![0u8; ecc.data_bytes()];
        let det0 = ecc.detection_of(&zero);
        let line = StoredLine {
            data: zero,
            detection: det0,
        };
        let per_channel = cfg.lines_per_channel() as usize;
        let store = (0..cfg.channels)
            .map(|_| vec![line.clone(); per_channel])
            .collect();
        ParityMemory {
            health: HealthTable::new(cfg.channels, cfg.banks_per_channel, cfg.threshold),
            ecc,
            cfg,
            layout,
            store,
            parities: HashMap::new(),
            ecc_lines: HashMap::new(),
            faults: vec![],
            stats: MemStats::default(),
            log: EventLog::default(),
        }
    }

    /// The shape/policy knobs this memory was built with.
    pub fn config(&self) -> &ParityConfig {
        &self.cfg
    }

    /// The parity-group address math.
    pub fn layout(&self) -> &ParityLayout {
        &self.layout
    }

    /// The bank-pair health table.
    pub fn health(&self) -> &HealthTable {
        &self.health
    }

    /// Operation counters since construction.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The underlying ECC scheme.
    pub fn ecc(&self) -> &S {
        &self.ecc
    }

    /// The RAS event log (detections, retirements, migrations, ...).
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    fn idx(&self, loc: &LineLoc) -> usize {
        assert!(loc.bank < self.cfg.banks_per_channel);
        assert!(loc.row < self.cfg.data_rows);
        assert!(loc.line < self.cfg.lines_per_row);
        ((loc.bank as u64 * self.cfg.data_rows as u64 + loc.row as u64)
            * self.cfg.lines_per_row as u64
            + loc.line as u64) as usize
    }

    /// Inject a *permanent* device fault: an overlay that corrupts every
    /// subsequent read whose coordinates it covers (stuck-at semantics).
    pub fn inject_fault(&mut self, fault: FaultInstance) {
        assert!(
            fault.chip.channel < self.cfg.channels,
            "fault channel out of range"
        );
        self.faults.push(fault);
    }

    /// Inject a *transient* fault (e.g. a particle strike): the covered
    /// lines' stored bytes are corrupted once, in place. Unlike a permanent
    /// fault, a scrub sweep repairs the damage for good (the corrected data
    /// is written back), so transients never accumulate toward migration
    /// beyond their first detection.
    pub fn inject_transient(&mut self, fault: FaultInstance) {
        assert!(
            fault.chip.channel < self.cfg.channels,
            "fault channel out of range"
        );
        let chips = self.ecc.chips_per_rank();
        let layout = self.ecc.chip_layout();
        let chip = fault.chip.chip % chips;
        for bank in 0..self.cfg.banks_per_channel {
            for row in 0..self.cfg.data_rows {
                for line in 0..self.cfg.lines_per_row {
                    if !fault.affects(fault.chip.rank, bank as u32, row, line) {
                        continue;
                    }
                    let idx = self.idx(&LineLoc { bank, row, line });
                    let stored = &mut self.store[fault.chip.channel][idx];
                    for span in &layout[chip] {
                        let buf: &mut [u8] = match span.region {
                            Region::Data => &mut stored.data[span.start..span.start + span.len],
                            Region::Detection => {
                                &mut stored.detection[span.start..span.start + span.len]
                            }
                            Region::Correction => continue,
                        };
                        fault.corrupt(buf, bank as u32, row, line ^ ((span.start as u32) << 8));
                    }
                }
            }
        }
    }

    /// Faults currently injected.
    pub fn faults(&self) -> &[FaultInstance] {
        &self.faults
    }

    /// Raw device read: true contents plus fault-overlay corruption of the
    /// byte spans owned by faulty devices.
    fn read_raw(&self, channel: usize, loc: &LineLoc) -> (Vec<u8>, Vec<u8>) {
        let s = &self.store[channel][self.idx(loc)];
        let mut data = s.data.clone();
        let mut det = s.detection.clone();
        let chips = self.ecc.chips_per_rank();
        let layout = self.ecc.chip_layout();
        for f in &self.faults {
            if f.chip.channel != channel {
                continue;
            }
            if !f.affects(f.chip.rank, loc.bank as u32, loc.row, loc.line) {
                continue;
            }
            let chip = f.chip.chip % chips;
            for span in &layout[chip] {
                let buf: &mut [u8] = match span.region {
                    Region::Data => &mut data[span.start..span.start + span.len],
                    Region::Detection => &mut det[span.start..span.start + span.len],
                    // Correction bits are not stored inline under ECC Parity.
                    Region::Correction => continue,
                };
                f.corrupt(
                    buf,
                    loc.bank as u32,
                    loc.row,
                    loc.line ^ ((span.start as u32) << 8),
                );
            }
        }
        (data, det)
    }

    /// Current parity of a group (materializing it from member contents on
    /// first touch).
    fn parity(&mut self, group: GroupId) -> &mut Vec<u8> {
        if !self.parities.contains_key(&group) {
            let fresh = self.compute_parity_from_scratch(&group);
            self.parities.insert(group, fresh);
        }
        self.parities.get_mut(&group).unwrap()
    }

    /// Recompute a group parity from the true stored contents of its
    /// non-migrated members (ground truth; the incremental write-path
    /// updates must always agree — see the property tests).
    pub fn compute_parity_from_scratch(&self, group: &GroupId) -> Vec<u8> {
        let mut p = vec![0u8; self.ecc.correction_bytes()];
        for (mc, mloc) in self.layout.members(group) {
            if self.health.is_faulty(mc, mloc.bank) {
                continue; // migrated: contribution removed
            }
            let corr = self
                .ecc
                .correction_of(&self.store[mc][self.idx(&mloc)].data);
            for (a, b) in p.iter_mut().zip(&corr) {
                *a ^= b;
            }
        }
        p
    }

    /// Fig 6 step C: rebuild the correction bits of `(channel, loc)` from
    /// its group parity plus the correction bits of the other members,
    /// which are recomputed from their (verified-clean) data.
    fn reconstruct_correction(
        &mut self,
        channel: usize,
        loc: &LineLoc,
    ) -> Result<Vec<u8>, MemError> {
        let group = self.layout.group_of(channel, loc);
        let mut corr = self.parity(group).clone();
        let members = self.layout.members(&group);
        for (mc, mloc) in members {
            if mc == channel && mloc == *loc {
                continue;
            }
            if self.health.is_faulty(mc, mloc.bank) {
                continue; // already out of the parity
            }
            let (mdata, mdet) = self.read_raw(mc, &mloc);
            self.stats.reconstruction_reads += 1;
            if self.ecc.detect(&mdata, &mdet) != DetectOutcome::Clean {
                // Two channels faulty at the same relative location and the
                // second not yet migrated: the parity cannot help.
                return Err(MemError::Uncorrectable);
            }
            let mcorr = self.ecc.correction_of(&mdata);
            for (a, b) in corr.iter_mut().zip(&mcorr) {
                *a ^= b;
            }
        }
        self.stats.parity_reconstructions += 1;
        Ok(corr)
    }

    /// Record a detected error per §III-C: increment the pair counter,
    /// retire the page (and its parity-sharing peer pages) below the
    /// threshold, migrate the pair at the threshold. Returns pages retired.
    fn note_error(&mut self, channel: usize, loc: &LineLoc) -> (u64, bool) {
        match self.health.record_error(channel, loc.bank) {
            HealthAction::RetirePage => {
                let mut retired = 0u64;
                // The page itself plus every page sharing its parities: the
                // member pages of this page's parity group.
                let group = self.layout.group_of(channel, loc);
                for (mc, mloc) in self.layout.members(&group) {
                    if !self.health.is_retired(mc, mloc.bank, mloc.row) {
                        self.health.retire_page(mc, mloc.bank, mloc.row);
                        self.log.push(MemEvent::PageRetired {
                            channel: mc,
                            bank: mloc.bank,
                            row: mloc.row,
                        });
                        retired += 1;
                    }
                }
                (retired, false)
            }
            HealthAction::MigratePair => {
                self.migrate_pair(channel, loc.bank / 2);
                (0, true)
            }
            HealthAction::AlreadyFaulty => (0, false),
        }
    }

    /// §III-B: store the actual ECC correction bits of both banks of a pair
    /// and strike their contributions from every parity group. ECC lines
    /// live cross-bank within the pair (Fig 5) with a 2R capacity charge and
    /// their own ECC protection (we model them as reliable storage).
    pub fn migrate_pair(&mut self, channel: usize, pair: usize) {
        let banks = [2 * pair, 2 * pair + 1];
        // Mark first so parity materialization during the sweep excludes us.
        self.health
            .mark_faulty(crate::health::PairId { channel, pair });
        for &bank in &banks {
            for row in 0..self.cfg.data_rows {
                for line in 0..self.cfg.lines_per_row {
                    let loc = LineLoc { bank, row, line };
                    // True stored data is the reconstruction target; the
                    // hardware obtains it by correcting through parities
                    // (the read path proves that works).
                    let true_data = self.store[channel][self.idx(&loc)].data.clone();
                    let corr = self.ecc.correction_of(&true_data);
                    // Remove this line's contribution from its group parity
                    // (skip if the parity was never materialized AND compute-
                    // from-scratch already excludes us via the faulty mark).
                    let group = self.layout.group_of(channel, &loc);
                    if let Some(p) = self.parities.get_mut(&group) {
                        for (a, b) in p.iter_mut().zip(&corr) {
                            *a ^= b;
                        }
                    }
                    self.ecc_lines.insert((channel, loc), corr);
                }
            }
        }
        self.stats.pairs_migrated += 1;
        self.log.push(MemEvent::PairMigrated { channel, pair });
    }

    /// Application read (Fig 6 left half).
    pub fn read(&mut self, channel: usize, loc: LineLoc) -> Result<Vec<u8>, MemError> {
        if self.health.is_retired(channel, loc.bank, loc.row) {
            return Err(MemError::RetiredPage);
        }
        self.stats.reads += 1;
        let (mut data, det) = self.read_raw(channel, &loc);
        let faulty = self.health.is_faulty(channel, loc.bank); // step A1
        if self.ecc.detect(&data, &det) == DetectOutcome::Clean {
            return Ok(data);
        }
        self.stats.detected_errors += 1;
        let corr = if faulty {
            // Step B: the ECC line was read in parallel.
            self.stats.ecc_line_corrections += 1;
            self.ecc_lines
                .get(&(channel, loc))
                .cloned()
                .unwrap_or_else(|| vec![0u8; self.ecc.correction_bytes()])
        } else {
            // Step C: reconstruct from the parity.
            match self.reconstruct_correction(channel, &loc) {
                Ok(c) => c,
                Err(e) => {
                    self.stats.uncorrectable += 1;
                    self.log.push(MemEvent::Uncorrectable { channel, loc });
                    self.note_error(channel, &loc);
                    return Err(e);
                }
            }
        };
        match self.ecc.correct(&mut data, &det, &corr, None) {
            Ok(_) => {
                self.log.push(MemEvent::ErrorDetected {
                    channel,
                    loc,
                    resolved: if faulty {
                        CorrectionPath::StoredEccLine
                    } else {
                        CorrectionPath::ParityReconstruction
                    },
                });
                if !faulty {
                    self.note_error(channel, &loc);
                }
                Ok(data)
            }
            Err(_) => {
                self.stats.uncorrectable += 1;
                self.log.push(MemEvent::Uncorrectable { channel, loc });
                if !faulty {
                    self.note_error(channel, &loc);
                }
                Err(MemError::Uncorrectable)
            }
        }
    }

    /// Application write (Fig 6 right half).
    pub fn write(&mut self, channel: usize, loc: LineLoc, new_data: &[u8]) -> Result<(), MemError> {
        assert_eq!(new_data.len(), self.ecc.data_bytes());
        if self.health.is_retired(channel, loc.bank, loc.row) {
            return Err(MemError::RetiredPage);
        }
        self.stats.writes += 1;
        let faulty = self.health.is_faulty(channel, loc.bank); // step A2
        let idx = self.idx(&loc);
        let new_corr = self.ecc.correction_of(new_data);
        if faulty {
            // Step D: write the ECC line alongside the data.
            self.ecc_lines.insert((channel, loc), new_corr);
            self.stats.ecc_line_updates += 1;
        } else {
            // Step E, equation (1): ECCP_new = ECCP_old ^ ECC_old ^ ECC_new.
            // ECC_old comes from the line's old value — on hardware, the
            // inclusive LLC holds it (Fig 7); here, the true stored value.
            let old_corr = self.ecc.correction_of(&self.store[channel][idx].data);
            let group = self.layout.group_of(channel, &loc);
            let p = self.parity(group);
            for ((a, o), n) in p.iter_mut().zip(&old_corr).zip(&new_corr) {
                *a ^= o ^ n;
            }
            self.stats.parity_updates += 1;
        }
        let det = self.ecc.detection_of(new_data);
        self.store[channel][idx] = StoredLine {
            data: new_data.to_vec(),
            detection: det,
        };
        Ok(())
    }

    /// One full scrub sweep over every non-retired line of every channel
    /// (§III-C: periodic scanning bounds the window in which a second
    /// channel can fail before a first fault is reacted to).
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for channel in 0..self.cfg.channels {
            for bank in 0..self.cfg.banks_per_channel {
                for row in 0..self.cfg.data_rows {
                    if self.health.is_retired(channel, bank, row) {
                        continue;
                    }
                    for line in 0..self.cfg.lines_per_row {
                        // Re-check retirement: an earlier error in this very
                        // sweep may have retired the page.
                        if self.health.is_retired(channel, bank, row) {
                            break;
                        }
                        let loc = LineLoc { bank, row, line };
                        report.lines_scanned += 1;
                        let (data, det) = self.read_raw(channel, &loc);
                        if self.ecc.detect(&data, &det) == DetectOutcome::Clean {
                            continue;
                        }
                        report.errors_detected += 1;
                        if self.health.is_faulty(channel, bank) {
                            continue; // already migrated; reads use ECC lines
                        }
                        // Verify correctability through the parity path, then
                        // act on the counter.
                        let correctable = {
                            match self.reconstruct_correction(channel, &loc) {
                                Ok(corr) => {
                                    let mut d = data.clone();
                                    match self.ecc.correct(&mut d, &det, &corr, None) {
                                        Ok(_) => {
                                            // Scrub repair: write the
                                            // corrected value back. Heals
                                            // transient damage in place;
                                            // permanent faults re-corrupt on
                                            // the next read (overlay).
                                            let idx = self.idx(&loc);
                                            let fixed_det = self.ecc.detection_of(&d);
                                            // Keep parity consistent via the
                                            // standard write-path identity.
                                            let old_corr = self
                                                .ecc
                                                .correction_of(&self.store[channel][idx].data);
                                            let new_corr = self.ecc.correction_of(&d);
                                            let group = self.layout.group_of(channel, &loc);
                                            let p = self.parity(group);
                                            for ((a, o), n) in
                                                p.iter_mut().zip(&old_corr).zip(&new_corr)
                                            {
                                                *a ^= o ^ n;
                                            }
                                            self.store[channel][idx] = StoredLine {
                                                data: d,
                                                detection: fixed_det,
                                            };
                                            true
                                        }
                                        Err(_) => false,
                                    }
                                }
                                Err(_) => false,
                            }
                        };
                        if !correctable {
                            report.uncorrectable += 1;
                            self.stats.uncorrectable += 1;
                        }
                        let (retired, migrated) = self.note_error(channel, &loc);
                        report.pages_retired += retired;
                        if migrated {
                            report.pairs_migrated += 1;
                            break; // bank now served by ECC lines
                        }
                        if retired > 0 {
                            break; // page gone; move to next row
                        }
                    }
                }
            }
        }
        report
    }

    /// Current total capacity overhead: detection (12.5%) + parity region +
    /// 2R for every migrated pair + retired pages.
    pub fn capacity_overhead(&self) -> f64 {
        let n = self.cfg.channels as f64;
        let r = self.ecc.correction_ratio();
        let detection = self.ecc.detection_bytes() as f64 / self.ecc.data_bytes() as f64;
        let parity = 1.125 * r / (n - 1.0);
        let migrated = self.health.faulty_fraction() * 2.0 * r;
        let total_pages =
            (self.cfg.channels * self.cfg.banks_per_channel) as f64 * self.cfg.data_rows as f64;
        let retired = self.health.retired_count() as f64 / total_pages;
        detection + parity + migrated + retired
    }
}
