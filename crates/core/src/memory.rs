//! A functional multi-channel memory protected by ECC Parity.
//!
//! This model stores real bytes and runs the real codes end to end:
//!
//! * each channel stores, per line, the **data** and its inline **detection
//!   bits** (computed by the underlying ECC at write time);
//! * **correction bits are not stored** — only the per-group XOR of them
//!   (the ECC parity), packed in the reserved region described by
//!   [`crate::layout::ParityLayout`];
//! * faults (from `mem-faults`) are *overlays*: reads through a faulty
//!   device return deterministically corrupted bytes for exactly the byte
//!   spans that device owns, while the underlying true values persist —
//!   matching real stuck-at device faults;
//! * the read path implements Fig 6 steps A1/B/C, the write path A2/D/E
//!   with parity update equation (1), and the scrubber drives the
//!   bank-pair error counters: page retirement below the threshold,
//!   migration of the pair to stored ECC lines at the threshold.
//!
//! Migrated pairs keep their corrupted devices, but every read corrects
//! through the stored ECC lines; their contribution is XORed out of every
//! parity group so the remaining channels retain single-channel protection
//! (the paper's defense against fault accumulation across channels).

use crate::events::{CorrectionPath, EventLog, MemEvent};
use crate::health::{HealthAction, HealthTable};
use crate::layout::{GroupId, LineLoc, ParityLayout};
use ecc_codes::traits::{CorrectionSplit, DetectOutcome, Region};
use mem_faults::FaultInstance;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Shape and policy knobs of a [`ParityMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityConfig {
    /// Channels in the system (one parity protects N-1 of them).
    pub channels: usize,
    /// Banks per channel (even; paired for health tracking).
    pub banks_per_channel: usize,
    /// Data rows per bank (a row models a 4KB physical page).
    pub data_rows: u32,
    /// Lines per DRAM row.
    pub lines_per_row: u32,
    /// Bank-pair error-counter threshold (paper default: 4).
    pub threshold: u8,
}

impl ParityConfig {
    /// A small functional-test configuration.
    pub fn small(channels: usize) -> ParityConfig {
        ParityConfig {
            channels,
            banks_per_channel: 4,
            data_rows: 2 * (channels as u32 - 1).max(1),
            lines_per_row: 4,
            threshold: 4,
        }
    }

    /// Data lines per bank.
    pub fn lines_per_bank(&self) -> u64 {
        self.data_rows as u64 * self.lines_per_row as u64
    }

    /// Data lines per channel.
    pub fn lines_per_channel(&self) -> u64 {
        self.banks_per_channel as u64 * self.lines_per_bank()
    }
}

/// Errors surfaced by memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The page was retired by the OS; software must not touch it.
    RetiredPage,
    /// Detected error beyond correction capability (e.g. faults in two
    /// channels at the same relative location while only parities exist).
    Uncorrectable,
    /// The addressed location does not exist in this memory's shape.
    BadLocation {
        /// Channel the access named.
        channel: usize,
        /// Line coordinates the access named.
        loc: LineLoc,
    },
    /// A data buffer does not match the scheme's line size.
    LengthMismatch {
        /// Bytes the scheme's lines hold.
        expected: usize,
        /// Bytes the caller supplied.
        got: usize,
    },
    /// A fault injection named a channel outside the configured system.
    FaultChannelOutOfRange {
        /// Channel the fault named.
        channel: usize,
        /// Channels the memory has.
        channels: usize,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::RetiredPage => write!(f, "access to a retired page"),
            MemError::Uncorrectable => write!(f, "uncorrectable memory error"),
            MemError::BadLocation { channel, loc } => write!(
                f,
                "no such line: channel {channel}, bank {}, row {}, line {}",
                loc.bank, loc.row, loc.line
            ),
            MemError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "data length mismatch: expected {expected} bytes, got {got}"
                )
            }
            MemError::FaultChannelOutOfRange { channel, channels } => write!(
                f,
                "fault channel {channel} out of range (memory has {channels} channels)"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// Outcome of one scrub sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Lines read by the sweep.
    pub lines_scanned: u64,
    /// Lines found inconsistent.
    pub errors_detected: u64,
    /// Pages retired as a consequence.
    pub pages_retired: u64,
    /// Bank pairs that crossed the threshold during the sweep.
    pub pairs_migrated: u64,
    /// Errors beyond the scheme's correction capability.
    pub uncorrectable: u64,
}

/// Operation counters (drive the traffic/energy accounting upstream).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Demand reads served.
    pub reads: u64,
    /// Demand writes served.
    pub writes: u64,
    /// Reads/scrubs that detected an error.
    pub detected_errors: u64,
    /// Corrections that reconstructed correction bits from the parity
    /// (Fig 6 step C) — each costs N-2 extra member reads plus the parity.
    pub parity_reconstructions: u64,
    /// Extra line reads performed for reconstructions.
    pub reconstruction_reads: u64,
    /// Corrections served by stored ECC lines (step B path).
    pub ecc_line_corrections: u64,
    /// Parity read-modify-writes on the write path (step E).
    pub parity_updates: u64,
    /// ECC-line writes on the write path to faulty banks (step D).
    pub ecc_line_updates: u64,
    /// Bank pairs migrated to stored ECC lines.
    pub pairs_migrated: u64,
    /// Errors beyond the scheme's correction capability.
    pub uncorrectable: u64,
}

#[derive(Debug, Clone)]
struct StoredLine {
    data: Vec<u8>,
    detection: Vec<u8>,
}

/// The functional ECC-Parity memory (see module docs).
pub struct ParityMemory<S: CorrectionSplit> {
    ecc: S,
    cfg: ParityConfig,
    layout: ParityLayout,
    health: HealthTable,
    /// True stored contents per channel, flat-indexed by line.
    store: Vec<Vec<StoredLine>>,
    /// Parity per group, length = correction_bytes. Lazily materialized.
    parities: HashMap<GroupId, Vec<u8>>,
    /// Stored ECC correction bits of migrated pairs.
    ecc_lines: HashMap<(usize, LineLoc), Vec<u8>>,
    faults: Vec<FaultInstance>,
    stats: MemStats,
    log: EventLog,
}

impl<S: CorrectionSplit> ParityMemory<S> {
    /// A pristine memory protecting `cfg`-shaped channels with `ecc`,
    /// deriving the paper's `R` from the code's byte counts.
    pub fn new(ecc: S, cfg: ParityConfig) -> Self {
        // R as an exact fraction from the code's byte counts.
        let r_num = ecc.correction_bytes() as u32;
        let r_den = ecc.data_bytes() as u32;
        let layout = ParityLayout::new(
            cfg.channels,
            cfg.banks_per_channel,
            cfg.data_rows,
            cfg.lines_per_row,
            r_num,
            r_den,
        );
        let zero = vec![0u8; ecc.data_bytes()];
        let det0 = ecc.detection_of(&zero);
        let line = StoredLine {
            data: zero,
            detection: det0,
        };
        let per_channel = cfg.lines_per_channel() as usize;
        let store = (0..cfg.channels)
            .map(|_| vec![line.clone(); per_channel])
            .collect();
        ParityMemory {
            health: HealthTable::new(cfg.channels, cfg.banks_per_channel, cfg.threshold),
            ecc,
            cfg,
            layout,
            store,
            parities: HashMap::new(),
            ecc_lines: HashMap::new(),
            faults: vec![],
            stats: MemStats::default(),
            log: EventLog::default(),
        }
    }

    /// The shape/policy knobs this memory was built with.
    pub fn config(&self) -> &ParityConfig {
        &self.cfg
    }

    /// The parity-group address math.
    pub fn layout(&self) -> &ParityLayout {
        &self.layout
    }

    /// The bank-pair health table.
    pub fn health(&self) -> &HealthTable {
        &self.health
    }

    /// Operation counters since construction.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The underlying ECC scheme.
    pub fn ecc(&self) -> &S {
        &self.ecc
    }

    /// The RAS event log (detections, retirements, migrations, ...).
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    fn idx(&self, loc: &LineLoc) -> usize {
        assert!(loc.bank < self.cfg.banks_per_channel);
        assert!(loc.row < self.cfg.data_rows);
        assert!(loc.line < self.cfg.lines_per_row);
        ((loc.bank as u64 * self.cfg.data_rows as u64 + loc.row as u64)
            * self.cfg.lines_per_row as u64
            + loc.line as u64) as usize
    }

    /// Typed bounds check for a public access: every entry point validates
    /// before `idx` so malformed addresses surface as [`MemError`]s rather
    /// than panics (the resilience soak drives arbitrary access streams).
    fn check_loc(&self, channel: usize, loc: &LineLoc) -> Result<(), MemError> {
        if channel >= self.cfg.channels
            || loc.bank >= self.cfg.banks_per_channel
            || loc.row >= self.cfg.data_rows
            || loc.line >= self.cfg.lines_per_row
        {
            return Err(MemError::BadLocation { channel, loc: *loc });
        }
        Ok(())
    }

    fn check_fault_channel(&self, fault: &FaultInstance) -> Result<(), MemError> {
        if fault.chip.channel >= self.cfg.channels {
            return Err(MemError::FaultChannelOutOfRange {
                channel: fault.chip.channel,
                channels: self.cfg.channels,
            });
        }
        Ok(())
    }

    /// Inject a *permanent* device fault: an overlay that corrupts every
    /// subsequent read whose coordinates it covers (stuck-at semantics).
    pub fn inject_fault(&mut self, fault: FaultInstance) {
        self.try_inject_fault(fault).expect("fault in range");
    }

    /// Fallible [`Self::inject_fault`]: rejects a fault whose channel lies
    /// outside this memory instead of panicking.
    pub fn try_inject_fault(&mut self, fault: FaultInstance) -> Result<(), MemError> {
        self.check_fault_channel(&fault)?;
        self.faults.push(fault);
        Ok(())
    }

    /// Inject a *transient* fault (e.g. a particle strike): the covered
    /// lines' stored bytes are corrupted once, in place. Unlike a permanent
    /// fault, a scrub sweep repairs the damage for good (the corrected data
    /// is written back), so transients never accumulate toward migration
    /// beyond their first detection.
    pub fn inject_transient(&mut self, fault: FaultInstance) {
        self.try_inject_transient(fault).expect("fault in range");
    }

    /// Fallible [`Self::inject_transient`]: rejects a fault whose channel
    /// lies outside this memory instead of panicking.
    pub fn try_inject_transient(&mut self, fault: FaultInstance) -> Result<(), MemError> {
        self.check_fault_channel(&fault)?;
        let chips = self.ecc.chips_per_rank();
        let layout = self.ecc.chip_layout();
        let chip = fault.chip.chip % chips;
        for bank in 0..self.cfg.banks_per_channel {
            for row in 0..self.cfg.data_rows {
                for line in 0..self.cfg.lines_per_row {
                    if !fault.affects(fault.chip.rank, bank as u32, row, line) {
                        continue;
                    }
                    let loc = LineLoc { bank, row, line };
                    // Materialize this group's parity from the pre-strike
                    // contents first: the parity region models state the
                    // write path has maintained since boot, so it must
                    // reflect the data as it was *before* the strike.
                    let group = self.layout.group_of(fault.chip.channel, &loc);
                    self.parity(group);
                    let idx = self.idx(&loc);
                    let stored = &mut self.store[fault.chip.channel][idx];
                    for span in &layout[chip] {
                        let buf: &mut [u8] = match span.region {
                            Region::Data => &mut stored.data[span.start..span.start + span.len],
                            Region::Detection => {
                                &mut stored.detection[span.start..span.start + span.len]
                            }
                            Region::Correction => continue,
                        };
                        fault.corrupt(buf, bank as u32, row, line ^ ((span.start as u32) << 8));
                    }
                }
            }
        }
        Ok(())
    }

    /// Faults currently injected.
    pub fn faults(&self) -> &[FaultInstance] {
        &self.faults
    }

    /// The exact `(data, detection)` bytes a device read of this location
    /// returns right now — true stored contents with the fault overlay
    /// applied, before any detection or correction.
    ///
    /// This is what the memory controller actually sees; external verifiers
    /// (the resilience soak) use it to decide whether a wrong-data `Ok` was
    /// an implementation failure (detection would have fired on this view)
    /// or a detection-coverage limit of the scheme itself (the view is
    /// self-consistent, e.g. a checksum-aliasing corruption).
    pub fn raw_view(&self, channel: usize, loc: &LineLoc) -> Result<(Vec<u8>, Vec<u8>), MemError> {
        self.check_loc(channel, loc)?;
        Ok(self.read_raw(channel, loc))
    }

    /// Raw device read: true contents plus fault-overlay corruption of the
    /// byte spans owned by faulty devices.
    fn read_raw(&self, channel: usize, loc: &LineLoc) -> (Vec<u8>, Vec<u8>) {
        let s = &self.store[channel][self.idx(loc)];
        let mut data = s.data.clone();
        let mut det = s.detection.clone();
        let chips = self.ecc.chips_per_rank();
        let layout = self.ecc.chip_layout();
        for f in &self.faults {
            if f.chip.channel != channel {
                continue;
            }
            if !f.affects(f.chip.rank, loc.bank as u32, loc.row, loc.line) {
                continue;
            }
            let chip = f.chip.chip % chips;
            for span in &layout[chip] {
                let buf: &mut [u8] = match span.region {
                    Region::Data => &mut data[span.start..span.start + span.len],
                    Region::Detection => &mut det[span.start..span.start + span.len],
                    // Correction bits are not stored inline under ECC Parity.
                    Region::Correction => continue,
                };
                f.corrupt(
                    buf,
                    loc.bank as u32,
                    loc.row,
                    loc.line ^ ((span.start as u32) << 8),
                );
            }
        }
        (data, det)
    }

    /// Current parity of a group (materializing it from member contents on
    /// first touch).
    fn parity(&mut self, group: GroupId) -> &mut Vec<u8> {
        if !self.parities.contains_key(&group) {
            let fresh = self.compute_parity_from_scratch(&group);
            self.parities.insert(group, fresh);
        }
        self.parities.get_mut(&group).unwrap()
    }

    /// Recompute a group parity from the true stored contents of its
    /// non-migrated members (ground truth; the incremental write-path
    /// updates must always agree — see the property tests).
    pub fn compute_parity_from_scratch(&self, group: &GroupId) -> Vec<u8> {
        let mut p = vec![0u8; self.ecc.correction_bytes()];
        for (mc, mloc) in self.layout.members(group) {
            if self.health.is_faulty(mc, mloc.bank) {
                continue; // migrated: contribution removed
            }
            let corr = self
                .ecc
                .correction_of(&self.store[mc][self.idx(&mloc)].data);
            for (a, b) in p.iter_mut().zip(&corr) {
                *a ^= b;
            }
        }
        p
    }

    /// Model a fault in the **reserved parity region itself**: corrupt the
    /// stored parity of `group` with a deterministic nonzero pattern.
    ///
    /// The parity region is ordinary DRAM (Fig 5) and can fail like any
    /// other row. Because reconstruction through a corrupted parity yields
    /// correction bits that fail the codec's internal verification, the
    /// outcome of a subsequent faulty-member read is a *detected*
    /// uncorrectable error, never silent corruption — the resilience soak's
    /// `parity_region_fault` scenario asserts exactly that.
    pub fn corrupt_parity(&mut self, group: GroupId, seed: u64) {
        let n = {
            let p = self.parity(group);
            let mut state = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x2545_F491_4F6C_DD1D);
            for b in p.iter_mut() {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let flip = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as u8;
                *b ^= if flip == 0 { 0xFF } else { flip };
            }
            p.len()
        };
        debug_assert_eq!(n, self.ecc.correction_bytes());
    }

    /// Repair the stored parity of `group` by recomputing it from the true
    /// member contents — the scrubber's action once a parity-region error
    /// is diagnosed (parity rows carry their own detection bits in the
    /// paper's layout, so the damage is discoverable).
    pub fn rebuild_parity(&mut self, group: GroupId) {
        let fresh = self.compute_parity_from_scratch(&group);
        self.parities.insert(group, fresh);
    }

    /// Audit every materialized group parity against a from-scratch
    /// recomputation; returns the number of inconsistent live groups.
    ///
    /// Zero is the invariant the incremental write-path updates must keep.
    /// Call **after** a scrub sweep: pending (not yet scrubbed) transient
    /// damage legitimately makes the stored parity disagree with a
    /// recomputation over the corrupted store. Groups with a retired member
    /// page are skipped — retirement freezes the page's bytes (possibly
    /// including unhealed transient damage scrub can no longer reach), and
    /// software never reads through such a group again.
    pub fn audit_parity_consistency(&self) -> usize {
        self.parities
            .iter()
            .filter(|(g, p)| {
                let retired = self
                    .layout
                    .members(g)
                    .into_iter()
                    .any(|(mc, ml)| self.health.is_retired(mc, ml.bank, ml.row));
                !retired && &self.compute_parity_from_scratch(g) != *p
            })
            .count()
    }

    /// Fig 6 step C: rebuild the correction bits of `(channel, loc)` from
    /// its group parity plus the correction bits of the other members,
    /// which are recomputed from their (verified-clean) data.
    fn reconstruct_correction(
        &mut self,
        channel: usize,
        loc: &LineLoc,
    ) -> Result<Vec<u8>, MemError> {
        let group = self.layout.group_of(channel, loc);
        let mut corr = self.parity(group).clone();
        let members = self.layout.members(&group);
        for (mc, mloc) in members {
            if mc == channel && mloc == *loc {
                continue;
            }
            if self.health.is_faulty(mc, mloc.bank) {
                continue; // already out of the parity
            }
            let (mdata, mdet) = self.read_raw(mc, &mloc);
            self.stats.reconstruction_reads += 1;
            if self.ecc.detect(&mdata, &mdet) != DetectOutcome::Clean {
                // Two channels faulty at the same relative location and the
                // second not yet migrated: the parity cannot help.
                return Err(MemError::Uncorrectable);
            }
            let mcorr = self.ecc.correction_of(&mdata);
            for (a, b) in corr.iter_mut().zip(&mcorr) {
                *a ^= b;
            }
        }
        self.stats.parity_reconstructions += 1;
        Ok(corr)
    }

    /// Record a detected error per §III-C: increment the pair counter,
    /// retire the page (and its parity-sharing peer pages) below the
    /// threshold, migrate the pair at the threshold. Returns pages retired.
    /// Retire the page of `(channel, loc)` together with every page sharing
    /// its parities (the member pages of its parity group). Returns the
    /// number of pages newly retired.
    fn retire_group_of(&mut self, channel: usize, loc: &LineLoc) -> u64 {
        let mut retired = 0u64;
        let group = self.layout.group_of(channel, loc);
        for (mc, mloc) in self.layout.members(&group) {
            if !self.health.is_retired(mc, mloc.bank, mloc.row) {
                self.health.retire_page(mc, mloc.bank, mloc.row);
                self.log.push(MemEvent::PageRetired {
                    channel: mc,
                    bank: mloc.bank,
                    row: mloc.row,
                });
                retired += 1;
            }
        }
        retired
    }

    fn note_error(&mut self, channel: usize, loc: &LineLoc) -> (u64, bool) {
        match self.health.record_error(channel, loc.bank) {
            HealthAction::RetirePage => {
                // The page itself plus every page sharing its parities: the
                // member pages of this page's parity group.
                (self.retire_group_of(channel, loc), false)
            }
            HealthAction::MigratePair => {
                self.migrate_pair(channel, loc.bank / 2);
                (0, true)
            }
            HealthAction::AlreadyFaulty => (0, false),
        }
    }

    /// §III-B: store the actual ECC correction bits of both banks of a pair
    /// and strike their contributions from every parity group. ECC lines
    /// live cross-bank within the pair (Fig 5) with a 2R capacity charge and
    /// their own ECC protection (we model them as reliable storage).
    pub fn migrate_pair(&mut self, channel: usize, pair: usize) {
        let banks = [2 * pair, 2 * pair + 1];
        // Pass 1 — heal before trusting: the snapshot below treats the
        // store as ground truth, but a transient strike corrupts the store
        // *in place*, and freezing that damage into the ECC lines would turn
        // it into permanent silent corruption. Any detect-dirty line is
        // first corrected through the parity path (valid here because the
        // pair is not yet marked faulty); lines the parity cannot fix take
        // their whole group out of service via retirement.
        for &bank in &banks {
            for row in 0..self.cfg.data_rows {
                if self.health.is_retired(channel, bank, row) {
                    continue;
                }
                for line in 0..self.cfg.lines_per_row {
                    if self.health.is_retired(channel, bank, row) {
                        break;
                    }
                    let loc = LineLoc { bank, row, line };
                    let idx = self.idx(&loc);
                    let stored = &self.store[channel][idx];
                    if self.ecc.detect(&stored.data, &stored.detection) == DetectOutcome::Clean {
                        continue;
                    }
                    let healed = match self.reconstruct_correction(channel, &loc) {
                        Ok(corr) => {
                            let (mut d, det) = {
                                let s = &self.store[channel][idx];
                                (s.data.clone(), s.detection.clone())
                            };
                            if self.ecc.correct(&mut d, &det, &corr, None).is_ok() {
                                // Scrub-identity write-back: `corr` is the
                                // line's actual parity contribution.
                                let new_corr = self.ecc.correction_of(&d);
                                let group = self.layout.group_of(channel, &loc);
                                let p = self.parity(group);
                                for ((a, o), n) in p.iter_mut().zip(&corr).zip(&new_corr) {
                                    *a ^= o ^ n;
                                }
                                let fixed_det = self.ecc.detection_of(&d);
                                self.store[channel][idx] = StoredLine {
                                    data: d,
                                    detection: fixed_det,
                                };
                                true
                            } else {
                                false
                            }
                        }
                        Err(_) => false,
                    };
                    if !healed {
                        self.stats.uncorrectable += 1;
                        self.log.push(MemEvent::Uncorrectable { channel, loc });
                        self.retire_group_of(channel, &loc);
                    }
                }
            }
        }
        // Mark first so parity materialization during the sweep excludes us.
        self.health
            .mark_faulty(crate::health::PairId { channel, pair });
        for &bank in &banks {
            for row in 0..self.cfg.data_rows {
                for line in 0..self.cfg.lines_per_row {
                    let loc = LineLoc { bank, row, line };
                    // True stored data is the reconstruction target; the
                    // hardware obtains it by correcting through parities
                    // (the read path proves that works).
                    let true_data = self.store[channel][self.idx(&loc)].data.clone();
                    let corr = self.ecc.correction_of(&true_data);
                    // Remove this line's contribution from its group parity
                    // (skip if the parity was never materialized AND compute-
                    // from-scratch already excludes us via the faulty mark).
                    let group = self.layout.group_of(channel, &loc);
                    if let Some(p) = self.parities.get_mut(&group) {
                        for (a, b) in p.iter_mut().zip(&corr) {
                            *a ^= b;
                        }
                    }
                    self.ecc_lines.insert((channel, loc), corr);
                }
            }
        }
        self.stats.pairs_migrated += 1;
        self.log.push(MemEvent::PairMigrated { channel, pair });
    }

    /// Application read (Fig 6 left half).
    pub fn read(&mut self, channel: usize, loc: LineLoc) -> Result<Vec<u8>, MemError> {
        self.check_loc(channel, &loc)?;
        if self.health.is_retired(channel, loc.bank, loc.row) {
            return Err(MemError::RetiredPage);
        }
        self.stats.reads += 1;
        let (mut data, det) = self.read_raw(channel, &loc);
        let faulty = self.health.is_faulty(channel, loc.bank); // step A1
        if self.ecc.detect(&data, &det) == DetectOutcome::Clean {
            return Ok(data);
        }
        self.stats.detected_errors += 1;
        let corr = if faulty {
            // Step B: the ECC line was read in parallel.
            self.stats.ecc_line_corrections += 1;
            self.ecc_lines
                .get(&(channel, loc))
                .cloned()
                .unwrap_or_else(|| vec![0u8; self.ecc.correction_bytes()])
        } else {
            // Step C: reconstruct from the parity.
            match self.reconstruct_correction(channel, &loc) {
                Ok(c) => c,
                Err(e) => {
                    self.stats.uncorrectable += 1;
                    self.log.push(MemEvent::Uncorrectable { channel, loc });
                    self.note_error(channel, &loc);
                    return Err(e);
                }
            }
        };
        match self.ecc.correct(&mut data, &det, &corr, None) {
            Ok(_) => {
                self.log.push(MemEvent::ErrorDetected {
                    channel,
                    loc,
                    resolved: if faulty {
                        CorrectionPath::StoredEccLine
                    } else {
                        CorrectionPath::ParityReconstruction
                    },
                });
                if !faulty {
                    self.note_error(channel, &loc);
                }
                Ok(data)
            }
            Err(_) => {
                self.stats.uncorrectable += 1;
                self.log.push(MemEvent::Uncorrectable { channel, loc });
                if !faulty {
                    self.note_error(channel, &loc);
                }
                Err(MemError::Uncorrectable)
            }
        }
    }

    /// Application write (Fig 6 right half).
    pub fn write(&mut self, channel: usize, loc: LineLoc, new_data: &[u8]) -> Result<(), MemError> {
        self.check_loc(channel, &loc)?;
        if new_data.len() != self.ecc.data_bytes() {
            return Err(MemError::LengthMismatch {
                expected: self.ecc.data_bytes(),
                got: new_data.len(),
            });
        }
        if self.health.is_retired(channel, loc.bank, loc.row) {
            return Err(MemError::RetiredPage);
        }
        self.stats.writes += 1;
        let faulty = self.health.is_faulty(channel, loc.bank); // step A2
        let idx = self.idx(&loc);
        let new_corr = self.ecc.correction_of(new_data);
        if faulty {
            // Step D: write the ECC line alongside the data.
            self.ecc_lines.insert((channel, loc), new_corr);
            self.stats.ecc_line_updates += 1;
        } else {
            // Step E, equation (1): ECCP_new = ECCP_old ^ ECC_old ^ ECC_new.
            // ECC_old comes from the line's old value — on hardware, the
            // inclusive LLC holds it (Fig 7); here, the true stored value.
            let stored = &self.store[channel][idx];
            if self.ecc.detect(&stored.data, &stored.detection) == DetectOutcome::Clean {
                let old_corr = self.ecc.correction_of(&stored.data);
                let group = self.layout.group_of(channel, &loc);
                let p = self.parity(group);
                for ((a, o), n) in p.iter_mut().zip(&old_corr).zip(&new_corr) {
                    *a ^= o ^ n;
                }
            } else {
                // The stored bytes were corrupted in place (a transient
                // strike) after the parity last folded this line in, so
                // equation (1) applied to the corrupted value would drift
                // the parity. The contribution the parity actually holds is
                // recoverable the same way a read recovers it: parity XOR
                // the other members' correction bits. Never drop the parity
                // here — a lazy recompute would fold any still-corrupted
                // sibling's bytes in as truth, and a later read of that
                // sibling would then reconstruct correction bits matching
                // its corrupted data: silent corruption. (Hardware never
                // faces this: the LLC fill read would have corrected the
                // line before the store retired.)
                match self.reconstruct_correction(channel, &loc) {
                    Ok(corr_in_parity) => {
                        let group = self.layout.group_of(channel, &loc);
                        let p = self.parity(group);
                        for ((a, o), n) in p.iter_mut().zip(&corr_in_parity).zip(&new_corr) {
                            *a ^= o ^ n;
                        }
                    }
                    Err(_) => {
                        // Another member of the group is dirty too — beyond
                        // the single-device envelope, the line's old
                        // contribution is unrecoverable and the parity is
                        // unsalvageable. Fail visibly: machine-check the
                        // write and retire the whole group.
                        self.stats.uncorrectable += 1;
                        self.log.push(MemEvent::Uncorrectable { channel, loc });
                        self.retire_group_of(channel, &loc);
                        return Err(MemError::Uncorrectable);
                    }
                }
            }
            self.stats.parity_updates += 1;
        }
        let det = self.ecc.detection_of(new_data);
        self.store[channel][idx] = StoredLine {
            data: new_data.to_vec(),
            detection: det,
        };
        Ok(())
    }

    /// Batched application writes: identical semantics (results, stats,
    /// parity state, event log) to issuing [`Self::write`] per item in
    /// order, but the codec work of the common case — healthy bank, clean
    /// stored line — is pushed through the scheme's batched entry points
    /// ([`CorrectionSplit::correction_of_lines`] /
    /// [`CorrectionSplit::detection_of_lines`]), amortizing table/context
    /// setup across the whole batch. Items on rare paths (faulty bank,
    /// retired page, detect-dirty stored line, duplicate location within
    /// the batch, malformed address/length) fall back to the per-line
    /// write.
    pub fn write_lines(&mut self, writes: &[(usize, LineLoc, &[u8])]) -> Vec<Result<(), MemError>> {
        // Classification pass: no mutation yet, so stored contents are
        // exactly what sequential writes would have seen (duplicates — where
        // an earlier batch item changes what a later one reads — are sent
        // down the per-line fallback).
        let mut seen = std::collections::HashSet::new();
        let batched: Vec<bool> = writes
            .iter()
            .map(|&(channel, loc, data)| {
                self.check_loc(channel, &loc).is_ok()
                    && data.len() == self.ecc.data_bytes()
                    && seen.insert((channel, loc))
                    && !self.health.is_retired(channel, loc.bank, loc.row)
                    && !self.health.is_faulty(channel, loc.bank)
                    && {
                        let stored = &self.store[channel][self.idx(&loc)];
                        self.ecc.detect(&stored.data, &stored.detection) == DetectOutcome::Clean
                    }
            })
            .collect();
        // Batched codec work, before any mutation: new-data correction and
        // detection bits, plus the old stored lines' correction bits (the
        // ECC_old term of equation (1)).
        let new_refs: Vec<&[u8]> = writes
            .iter()
            .zip(&batched)
            .filter(|(_, &b)| b)
            .map(|(&(_, _, data), _)| data)
            .collect();
        let old_refs: Vec<&[u8]> = writes
            .iter()
            .zip(&batched)
            .filter(|(_, &b)| b)
            .map(|(&(channel, loc, _), _)| self.store[channel][self.idx(&loc)].data.as_slice())
            .collect();
        let new_corrs = self.ecc.correction_of_lines(&new_refs);
        let new_dets = self.ecc.detection_of_lines(&new_refs);
        let old_corrs = self.ecc.correction_of_lines(&old_refs);
        // Apply pass, in order. A fallback item can retire pages mid-batch
        // (the dirty-store machine-check path), so retirement is re-checked
        // before each precomputed apply; nothing else a write does can
        // invalidate the classification (writes never mark banks faulty,
        // and duplicates were excluded above).
        let mut k = 0usize;
        writes
            .iter()
            .zip(&batched)
            .map(|(&(channel, loc, data), &is_batched)| {
                if !is_batched {
                    return self.write(channel, loc, data);
                }
                let (new_corr, new_det, old_corr) = (&new_corrs[k], &new_dets[k], &old_corrs[k]);
                k += 1;
                if self.health.is_retired(channel, loc.bank, loc.row) {
                    return Err(MemError::RetiredPage);
                }
                self.stats.writes += 1;
                let group = self.layout.group_of(channel, &loc);
                let p = self.parity(group);
                for ((a, o), n) in p.iter_mut().zip(old_corr).zip(new_corr) {
                    *a ^= o ^ n;
                }
                self.stats.parity_updates += 1;
                let idx = self.idx(&loc);
                self.store[channel][idx] = StoredLine {
                    data: data.to_vec(),
                    detection: new_det.clone(),
                };
                Ok(())
            })
            .collect()
    }

    /// One full scrub sweep over every non-retired line of every channel
    /// (§III-C: periodic scanning bounds the window in which a second
    /// channel can fail before a first fault is reacted to).
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for channel in 0..self.cfg.channels {
            for bank in 0..self.cfg.banks_per_channel {
                for row in 0..self.cfg.data_rows {
                    if self.health.is_retired(channel, bank, row) {
                        continue;
                    }
                    for line in 0..self.cfg.lines_per_row {
                        // Re-check retirement: an earlier error in this very
                        // sweep may have retired the page.
                        if self.health.is_retired(channel, bank, row) {
                            break;
                        }
                        let loc = LineLoc { bank, row, line };
                        report.lines_scanned += 1;
                        let (data, det) = self.read_raw(channel, &loc);
                        if self.ecc.detect(&data, &det) == DetectOutcome::Clean {
                            continue;
                        }
                        report.errors_detected += 1;
                        if self.health.is_faulty(channel, bank) {
                            // Migrated banks stay in the scrub rotation,
                            // healing through the stored ECC line. Skipping
                            // them would let transient store damage sit
                            // unrepaired until a second, independent strike
                            // overlaps the same line — two devices' worth of
                            // damage, beyond every scheme's correction
                            // strength and a silent-corruption hazard. §III-C
                            // scrubbing exists precisely to bound that window.
                            let corr = self
                                .ecc_lines
                                .get(&(channel, loc))
                                .cloned()
                                .unwrap_or_else(|| vec![0u8; self.ecc.correction_bytes()]);
                            let mut d = data.clone();
                            if self.ecc.correct(&mut d, &det, &corr, None).is_ok() {
                                let fixed_det = self.ecc.detection_of(&d);
                                let idx = self.idx(&loc);
                                self.store[channel][idx] = StoredLine {
                                    data: d,
                                    detection: fixed_det,
                                };
                            } else {
                                // The ECC line cannot reconstruct the line:
                                // damage exceeded the envelope before this
                                // sweep reached it. Fail visibly and retire
                                // the page. Only this page: a migrated bank's
                                // parity contributions were already struck
                                // from every group at migration, so the
                                // damage is local — group-wide retirement
                                // here would cascade healthy peers out of
                                // service for no protective benefit.
                                report.uncorrectable += 1;
                                self.stats.uncorrectable += 1;
                                self.log.push(MemEvent::Uncorrectable { channel, loc });
                                if !self.health.is_retired(channel, loc.bank, loc.row) {
                                    self.health.retire_page(channel, loc.bank, loc.row);
                                    self.log.push(MemEvent::PageRetired {
                                        channel,
                                        bank: loc.bank,
                                        row: loc.row,
                                    });
                                    report.pages_retired += 1;
                                }
                            }
                            continue;
                        }
                        // Verify correctability through the parity path, then
                        // act on the counter.
                        let correctable = {
                            match self.reconstruct_correction(channel, &loc) {
                                Ok(corr) => {
                                    let mut d = data.clone();
                                    match self.ecc.correct(&mut d, &det, &corr, None) {
                                        Ok(_) => {
                                            // Scrub repair: write the
                                            // corrected value back. Heals
                                            // transient damage in place;
                                            // permanent faults re-corrupt on
                                            // the next read (overlay).
                                            let idx = self.idx(&loc);
                                            let fixed_det = self.ecc.detection_of(&d);
                                            // Keep parity consistent via the
                                            // write-path identity. The old
                                            // contribution is `corr` — what
                                            // the parity actually holds for
                                            // this line — NOT a recompute
                                            // from the store, whose bytes a
                                            // transient may have corrupted
                                            // after the parity last saw
                                            // them.
                                            let new_corr = self.ecc.correction_of(&d);
                                            let group = self.layout.group_of(channel, &loc);
                                            let p = self.parity(group);
                                            for ((a, o), n) in
                                                p.iter_mut().zip(&corr).zip(&new_corr)
                                            {
                                                *a ^= o ^ n;
                                            }
                                            self.store[channel][idx] = StoredLine {
                                                data: d,
                                                detection: fixed_det,
                                            };
                                            true
                                        }
                                        Err(_) => false,
                                    }
                                }
                                Err(_) => false,
                            }
                        };
                        if !correctable {
                            report.uncorrectable += 1;
                            self.stats.uncorrectable += 1;
                        }
                        let (retired, migrated) = self.note_error(channel, &loc);
                        report.pages_retired += retired;
                        if migrated {
                            report.pairs_migrated += 1;
                            break; // bank now served by ECC lines
                        }
                        if retired > 0 {
                            break; // page gone; move to next row
                        }
                    }
                }
            }
        }
        report
    }

    /// Current total capacity overhead: detection (12.5%) + parity region +
    /// 2R for every migrated pair + retired pages.
    pub fn capacity_overhead(&self) -> f64 {
        let n = self.cfg.channels as f64;
        let r = self.ecc.correction_ratio();
        let detection = self.ecc.detection_bytes() as f64 / self.ecc.data_bytes() as f64;
        let parity = 1.125 * r / (n - 1.0);
        let migrated = self.health.faulty_fraction() * 2.0 * r;
        let total_pages =
            (self.cfg.channels * self.cfg.banks_per_channel) as f64 * self.cfg.data_rows as f64;
        let retired = self.health.retired_count() as f64 / total_pages;
        detection + parity + migrated + retired
    }
}
