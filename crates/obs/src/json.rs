//! Minimal JSON emission helpers (this crate is dependency-free by design).

/// Append `s` to `out` as a JSON string literal, escaping per RFC 8259.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f64` as a JSON number. Non-finite values (which JSON cannot
/// represent) are emitted as `null`.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's `Display` for f64 produces the shortest representation
        // that round-trips, matching the repo's serde_json shim.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_literal(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
    }
}
