//! Standalone JSONL sinks for structured ledgers.
//!
//! [`crate::trace`] serves the *process-global* event stream; some
//! subsystems (the bench campaign supervisor's failure ledger, for one)
//! need their own dedicated JSONL file with their own schema stamp,
//! opened and owned by the caller rather than configured through the
//! environment. [`JsonlSink`] is that: a buffered line-per-record writer
//! reusing the same dependency-free JSON emission and the same
//! `(&str, Value)` field vocabulary as the trace sink.
//!
//! Each line has the shape
//!
//! ```json
//! {"schema":"<schema>","seq":3,"kind":"shard.retry","fields":{"shard":"cell:milc","attempt":2}}
//! ```
//!
//! `seq` counts from 1 in emission order. Lines are flushed as they are
//! written, so a crash loses at most the line being appended — consumers
//! must tolerate a torn final line, exactly like the checkpoint-journal
//! readers do.
//!
//! ```
//! let path = std::env::temp_dir().join(format!("obs-jsonl-doc-{}.jsonl", std::process::id()));
//! let mut sink = obs::jsonl::JsonlSink::create(&path, "demo-v1").unwrap();
//! sink.append("demo.event", &[("n", obs::trace::Value::U64(7))]).unwrap();
//! drop(sink);
//! let text = std::fs::read_to_string(&path).unwrap();
//! assert!(text.contains("\"kind\":\"demo.event\""));
//! # std::fs::remove_file(&path).ok();
//! ```

use crate::json;
use crate::trace::Value;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A dedicated JSONL ledger file: one schema, one sequence, one owner.
pub struct JsonlSink {
    path: PathBuf,
    writer: std::io::BufWriter<std::fs::File>,
    schema: String,
    seq: u64,
}

impl JsonlSink {
    /// Create (truncating) the ledger at `path`, stamping every line with
    /// `schema`. Parent directories are created.
    pub fn create(path: &Path, schema: &str) -> std::io::Result<JsonlSink> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            path: path.to_path_buf(),
            writer: std::io::BufWriter::new(file),
            schema: schema.to_string(),
            seq: 0,
        })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.seq
    }

    /// Append one record and flush it to disk.
    pub fn append(&mut self, kind: &str, fields: &[(&str, Value<'_>)]) -> std::io::Result<()> {
        self.seq += 1;
        let mut line = String::with_capacity(96);
        line.push_str("{\"schema\":");
        json::push_str_literal(&mut line, &self.schema);
        line.push_str(&format!(",\"seq\":{},\"kind\":", self.seq));
        json::push_str_literal(&mut line, kind);
        line.push_str(",\"fields\":{");
        for (i, (name, v)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            json::push_str_literal(&mut line, name);
            line.push(':');
            match v {
                Value::U64(n) => line.push_str(&n.to_string()),
                Value::I64(n) => line.push_str(&n.to_string()),
                Value::F64(f) => json::push_f64(&mut line, *f),
                Value::Str(s) => json::push_str_literal(&mut line, s),
                Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
            }
        }
        line.push_str("}}\n");
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_writes_schema_stamped_lines_in_seq_order() {
        let path =
            std::env::temp_dir().join(format!("obs-jsonl-unit-{}.jsonl", std::process::id()));
        let mut sink = JsonlSink::create(&path, "unit-v1").unwrap();
        sink.append("a", &[("x", Value::U64(1))]).unwrap();
        sink.append("b", &[("s", Value::Str("q\"r"))]).unwrap();
        assert_eq!(sink.lines(), 2);
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"schema\":\"unit-v1\""));
        assert!(lines[0].contains("\"seq\":1"));
        assert!(lines[1].contains("\"seq\":2"));
        assert!(lines[1].contains("\"s\":\"q\\\"r\""));
        std::fs::remove_file(&path).ok();
    }
}
