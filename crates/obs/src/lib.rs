//! # obs — zero-dependency observability for the ECC Parity reproduction
//!
//! The paper's mechanism is driven by *observed* error behaviour (bank-pair
//! error counters trigger the fallback from parity-only protection to real
//! correction bits), and the reproduction's performance story is driven by
//! hot-loop dynamics (scheduler decisions, XOR-cache hit rates, run-cache
//! reuse) that final aggregates hide. This crate makes those internal
//! dynamics visible without perturbing them:
//!
//! * [`metrics`] — a process-global registry of named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and [`metrics::Histogram`]s (fixed log2 buckets).
//!   All atomic and rayon-safe: totals are deterministic regardless of
//!   thread schedule. Enabled by `ECC_PARITY_METRICS=<path>`; a JSON
//!   snapshot (schema `eccparity-metrics-v1`) is written at the end of each
//!   bench-binary run.
//! * [`trace`] — a structured event sink writing one JSON object per line
//!   (schema `eccparity-trace-v1`) to the file named by
//!   `ECC_PARITY_TRACE=<path>`: health-counter crossings, degraded-mode
//!   transitions, run-cache hits/misses, and run lifecycle events.
//!
//! When the environment variables are unset every hook compiles down to one
//! relaxed atomic load and a predictable branch — stdout of every figure
//! binary stays byte-identical and the overhead is unmeasurable. Hooks
//! never print: metrics go to the snapshot file, events to the trace file.
//!
//! ## Recording metrics
//!
//! Call sites use the [`counter!`], [`gauge!`], and [`histogram!`] macros,
//! which resolve the registry entry once per call site and cache the
//! handle:
//!
//! ```
//! obs::metrics::set_enabled(true); // tests force it; binaries use the env
//! obs::counter!("demo.widgets").add(3);
//! obs::histogram!("demo.sizes").observe(1500);
//! assert_eq!(obs::counter!("demo.widgets").get(), 3);
//! ```
//!
//! ## Reading them back
//!
//! [`metrics::snapshot`] returns every registered metric sorted by name;
//! [`metrics::snapshot_json`] renders the documented JSON schema (see
//! `ARCHITECTURE.md` §Observability for the field-by-field contract).

#![warn(missing_docs)]

pub mod jsonl;
pub mod metrics;
pub mod trace;

mod json;

pub use metrics::{Counter, Gauge, Histogram};
