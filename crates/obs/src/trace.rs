//! Structured event tracing: one JSON object per line (JSONL), schema
//! `eccparity-trace-v1`.
//!
//! Events are **opt-in** via `ECC_PARITY_TRACE=<path>`; when that variable
//! is unset (and [`set_path`] was never called) every [`event`] call is a
//! relaxed atomic load and a branch. Event emission takes a mutex, writes
//! one line, and flushes — trace points are therefore placed at *decision*
//! frequency (health-counter crossings, migrations, run-cache lookups, run
//! lifecycle), not at per-memory-access frequency; high-frequency dynamics
//! belong in [`crate::metrics`] counters.
//!
//! Each line has the shape:
//!
//! ```json
//! {"schema":"eccparity-trace-v1","seq":7,"kind":"health.pair_migrated","fields":{"channel":0,"pair":3}}
//! ```
//!
//! `seq` is a process-global sequence number assigned under the sink lock,
//! so line order in the file always matches `seq` order. Events from rayon
//! workers interleave; `seq` makes the interleaving explicit.
//!
//! ```
//! let path = std::env::temp_dir().join(format!("obs-doc-{}.jsonl", std::process::id()));
//! obs::trace::set_path(&path).unwrap();
//! obs::trace::event("doc.example", &[("answer", obs::trace::Value::U64(42))]);
//! obs::trace::flush();
//! let text = std::fs::read_to_string(&path).unwrap();
//! assert!(text.contains("\"kind\":\"doc.example\""));
//! # std::fs::remove_file(&path).ok();
//! ```

use crate::json;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Schema identifier stamped into every trace line.
pub const TRACE_SCHEMA: &str = "eccparity-trace-v1";

/// One field value of a trace event.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values are emitted as `null`).
    F64(f64),
    /// String (escaped on emission).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

struct Sink {
    writer: std::io::BufWriter<std::fs::File>,
    seq: u64,
}

/// 0 = uninitialized, 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Is event tracing on? Lazily initialized from `ECC_PARITY_TRACE`;
/// [`set_path`] overrides.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let Some(path) = std::env::var_os("ECC_PARITY_TRACE") else {
        ENABLED.store(1, Ordering::Relaxed);
        return false;
    };
    match open_sink(Path::new(&path)) {
        Ok(()) => true,
        Err(e) => {
            eprintln!(
                "obs: failed to open trace file {}: {e}; tracing disabled",
                Path::new(&path).display()
            );
            ENABLED.store(1, Ordering::Relaxed);
            false
        }
    }
}

fn open_sink(path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let file = std::fs::File::create(path)?;
    let mut sink = SINK.lock().unwrap();
    *sink = Some(Sink {
        writer: std::io::BufWriter::new(file),
        seq: 0,
    });
    ENABLED.store(2, Ordering::Relaxed);
    Ok(())
}

/// Point the trace sink at `path` (truncating it), overriding the
/// environment. Intended for tests and embedders.
pub fn set_path(path: &Path) -> std::io::Result<()> {
    open_sink(path)
}

/// Emit one event. A no-op (one load, one branch) while tracing is off.
///
/// `kind` is a dot-separated event name (`"health.pair_migrated"`,
/// `"cache.miss"`); `fields` carry the event's coordinates. Emission never
/// panics on I/O failure — a broken sink disables itself with a note on
/// stderr.
pub fn event(kind: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled() {
        return;
    }
    let mut line = String::with_capacity(96);
    line.push_str("{\"schema\":");
    json::push_str_literal(&mut line, TRACE_SCHEMA);
    line.push_str(",\"seq\":@,\"kind\":");
    json::push_str_literal(&mut line, kind);
    line.push_str(",\"fields\":{");
    for (i, (name, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        json::push_str_literal(&mut line, name);
        line.push(':');
        match v {
            Value::U64(n) => line.push_str(&n.to_string()),
            Value::I64(n) => line.push_str(&n.to_string()),
            Value::F64(f) => json::push_f64(&mut line, *f),
            Value::Str(s) => json::push_str_literal(&mut line, s),
            Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push_str("}}\n");

    let mut guard = SINK.lock().unwrap();
    let Some(sink) = guard.as_mut() else { return };
    sink.seq += 1;
    let line = line.replacen('@', &sink.seq.to_string(), 1);
    let ok = sink
        .writer
        .write_all(line.as_bytes())
        .and_then(|()| sink.writer.flush());
    if let Err(e) = ok {
        eprintln!("obs: trace write failed: {e}; tracing disabled");
        *guard = None;
        ENABLED.store(1, Ordering::Relaxed);
    }
}

/// Flush the sink (emission already flushes per line; this exists so run
/// teardown can be explicit about durability).
pub fn flush() {
    if let Some(sink) = SINK.lock().unwrap().as_mut() {
        let _ = sink.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_jsonl_with_monotone_seq() {
        let path =
            std::env::temp_dir().join(format!("obs-trace-unit-{}.jsonl", std::process::id()));
        set_path(&path).unwrap();
        event(
            "unit.alpha",
            &[
                ("n", Value::U64(7)),
                ("label", Value::Str("a\"b")),
                ("ok", Value::Bool(true)),
            ],
        );
        event("unit.beta", &[("x", Value::F64(0.5))]);
        flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":1"));
        assert!(lines[0].contains("\"kind\":\"unit.alpha\""));
        assert!(lines[0].contains("\"label\":\"a\\\"b\""));
        assert!(lines[1].contains("\"seq\":2"));
        assert!(lines[1].contains("\"x\":0.5"));
        std::fs::remove_file(&path).ok();
    }
}
