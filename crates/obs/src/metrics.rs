//! Process-global metrics registry: counters, gauges, and histograms with
//! fixed log2 buckets.
//!
//! Every metric is a leaked, `'static` atomic cell looked up by name in a
//! global registry; the [`counter!`](crate::counter), [`gauge!`](crate::gauge)
//! and [`histogram!`](crate::histogram) macros cache the lookup per call
//! site, so the steady-state cost of a hook is one `OnceLock` load plus the
//! enabled check. Recording is gated on [`enabled`]: when
//! `ECC_PARITY_METRICS` is unset (and [`set_enabled`] was never called),
//! every `inc`/`add`/`observe`/`set_max` is a relaxed atomic load and a
//! branch — no stores, no contention.
//!
//! All operations use relaxed atomics. Counter and histogram totals are
//! sums of per-event increments, and gauge `set_max` is a running maximum,
//! so aggregate values are **deterministic under rayon**: any thread
//! schedule that performs the same set of events produces the same totals
//! (`crates/obs/tests/metrics_tests.rs` locks this in).

use crate::json;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Schema identifier stamped into every metrics snapshot JSON.
pub const SNAPSHOT_SCHEMA: &str = "eccparity-metrics-v1";

/// Number of histogram buckets: bucket 0 holds zero-valued observations,
/// bucket `i` (1..=64) holds values `v` with `2^(i-1) <= v < 2^i`.
pub const HISTOGRAM_BUCKETS: usize = 65;

// ---- enablement ------------------------------------------------------------

/// 0 = uninitialized, 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Is metric recording on? Lazily initialized from the environment: enabled
/// iff `ECC_PARITY_METRICS` is set. Tests and embedders can override with
/// [`set_enabled`]. This is the single gate every hot-path hook checks.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = std::env::var_os("ECC_PARITY_METRICS").is_some();
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Force metric recording on or off, overriding the environment. Intended
/// for tests and embedders; figure binaries rely on the env gating so their
/// stdout stays byte-identical when observability is off.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The snapshot path configured via `ECC_PARITY_METRICS`, if any.
pub fn snapshot_path() -> Option<std::path::PathBuf> {
    std::env::var_os("ECC_PARITY_METRICS").map(std::path::PathBuf::from)
}

// ---- metric types ----------------------------------------------------------

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add one to the counter (no-op while recording is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` to the counter (no-op while recording is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A last-value / running-maximum cell. Prefer [`Gauge::set_max`] from
/// parallel code: a running maximum is schedule-independent, a plain
/// [`Gauge::set`] race is not.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// Overwrite the gauge (no-op while recording is disabled). Last write
    /// wins; only deterministic from single-threaded call sites.
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.v.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if `v` is larger (no-op while recording is
    /// disabled). Deterministic under any thread schedule.
    #[inline]
    pub fn set_max(&self, v: u64) {
        if enabled() {
            self.v.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A histogram over `u64` observations with fixed log2 buckets.
///
/// Bucket edges: bucket 0 counts observations equal to 0; bucket `i` for
/// `i >= 1` counts observations in `[2^(i-1), 2^i)`. The top bucket
/// (index 64) therefore counts `[2^63, u64::MAX]`.
///
/// ```
/// obs::metrics::set_enabled(true);
/// let h = obs::histogram!("doc.example.latency");
/// h.observe(0);   // bucket 0
/// h.observe(1);   // bucket 1: [1, 2)
/// h.observe(900); // bucket 10: [512, 1024)
/// let s = h.snapshot();
/// assert_eq!(s.count, 3);
/// assert_eq!(s.sum, 901);
/// assert_eq!(s.buckets[0], 1);
/// assert_eq!(s.buckets[1], 1);
/// assert_eq!(s.buckets[10], 1);
/// ```
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    /// Sum of observations; wraps on overflow (documented, not guarded —
    /// the quantities recorded here are far below 2^64 per run).
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
    /// Per-bucket counts; see [`Histogram`] for the bucket edges.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// Index of the bucket `v` falls into (see the type docs for edges).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one observation (no-op while recording is disabled).
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copy out the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

// ---- registry --------------------------------------------------------------

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

macro_rules! register_fn {
    ($fn_name:ident, $ty:ty, $variant:ident) => {
        /// Look up (registering on first use) the metric named `name`.
        ///
        /// Metrics live for the whole process. Panics if `name` is already
        /// registered as a different metric kind — a programming error that
        /// would silently split one name across two series otherwise.
        pub fn $fn_name(name: &'static str) -> &'static $ty {
            let mut reg = registry().lock().unwrap();
            match reg
                .entry(name)
                .or_insert_with(|| Metric::$variant(Box::leak(Box::default())))
            {
                Metric::$variant(m) => m,
                other => panic!(
                    "metric {name:?} already registered as a {}, requested as a {}",
                    other.kind(),
                    stringify!($fn_name),
                ),
            }
        }
    };
}

register_fn!(counter, Counter, Counter);
register_fn!(gauge, Gauge, Gauge);
register_fn!(histogram, Histogram, Histogram);

/// Resolve (and cache per call site) the [`Counter`](crate::metrics::Counter)
/// named by the literal argument.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Resolve (and cache per call site) the [`Gauge`](crate::metrics::Gauge)
/// named by the literal argument.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Resolve (and cache per call site) the
/// [`Histogram`](crate::metrics::Histogram) named by the literal argument.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

// ---- snapshots -------------------------------------------------------------

/// One registered metric's point-in-time value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge value.
    Gauge(u64),
    /// A histogram's full state (boxed: a snapshot is 65 buckets wide,
    /// which would otherwise dominate the enum's size).
    Histogram(Box<HistogramSnapshot>),
}

/// Every registered metric, sorted by name.
pub fn snapshot() -> Vec<(&'static str, MetricValue)> {
    let reg = registry().lock().unwrap();
    reg.iter()
        .map(|(&name, m)| {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
            };
            (name, v)
        })
        .collect()
}

/// Render the registry as the documented `eccparity-metrics-v1` JSON
/// object:
///
/// ```json
/// {
///   "schema": "eccparity-metrics-v1",
///   "title": "fig10",
///   "counters": {"dram.activates": 12345},
///   "gauges": {"dram.bus_occupancy_peak": 17},
///   "histograms": {
///     "dram.queue_delay": {"count": 9, "sum": 120, "buckets": [0, ...]}
///   }
/// }
/// ```
///
/// `buckets` always has exactly [`HISTOGRAM_BUCKETS`] entries. Keys within
/// each section are sorted, so two runs with identical dynamics produce
/// byte-identical snapshots.
pub fn snapshot_json(title: &str) -> String {
    let snap = snapshot();
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"schema\": ");
    json::push_str_literal(&mut out, SNAPSHOT_SCHEMA);
    out.push_str(",\n  \"title\": ");
    json::push_str_literal(&mut out, title);

    let section = |out: &mut String, name: &str| {
        out.push_str(",\n  ");
        json::push_str_literal(out, name);
        out.push_str(": {");
    };

    section(&mut out, "counters");
    let mut first = true;
    for (name, v) in &snap {
        if let MetricValue::Counter(c) = v {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            json::push_str_literal(&mut out, name);
            out.push_str(&format!(": {c}"));
        }
    }
    out.push_str("\n  }");

    section(&mut out, "gauges");
    let mut first = true;
    for (name, v) in &snap {
        if let MetricValue::Gauge(g) = v {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            json::push_str_literal(&mut out, name);
            out.push_str(&format!(": {g}"));
        }
    }
    out.push_str("\n  }");

    section(&mut out, "histograms");
    let mut first = true;
    for (name, v) in &snap {
        if let MetricValue::Histogram(h) = v {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            json::push_str_literal(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            ));
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&b.to_string());
            }
            out.push_str("]}");
        }
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Write [`snapshot_json`] to `path` (parent directories are created).
pub fn write_snapshot(path: &Path, title: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(snapshot_json(title).as_bytes())
}

/// If `ECC_PARITY_METRICS=<path>` is set, write the snapshot there. Errors
/// are reported on stderr (never stdout) and otherwise swallowed: metrics
/// must not turn a successful figure run into a failure.
pub fn write_snapshot_if_configured(title: &str) {
    let Some(path) = snapshot_path() else { return };
    if let Err(e) = write_snapshot(&path, title) {
        eprintln!(
            "obs: failed to write metrics snapshot {}: {e}",
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of((1 << 20) - 1), 20);
        assert_eq!(Histogram::bucket_of(1 << 20), 21);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn kind_mismatch_panics() {
        set_enabled(true);
        let _ = counter("unit.kind_mismatch");
        let r = std::panic::catch_unwind(|| gauge("unit.kind_mismatch"));
        assert!(r.is_err(), "same name as a different kind must panic");
    }
}
