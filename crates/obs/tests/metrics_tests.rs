//! Integration tests for the metrics registry: aggregate determinism under
//! rayon, histogram bucket edges through the `observe` path, and snapshot
//! JSON validity against the documented `eccparity-metrics-v1` schema.
//!
//! The registry is process-global and the tests in this binary run
//! concurrently, so every test uses metric names unique to itself and
//! asserts on deltas or its own entries only.

use rayon::prelude::*;

/// Counter totals, histogram counts/sums/buckets, and `set_max` gauges must
/// come out identical for any thread schedule that performs the same events.
/// Run the same parallel workload twice and check both rounds against a
/// sequentially computed expectation.
#[test]
fn aggregates_deterministic_under_rayon() {
    obs::metrics::set_enabled(true);
    let c = obs::counter!("test.par.events");
    let h = obs::histogram!("test.par.delay");
    let g = obs::gauge!("test.par.peak");

    const N: u64 = 10_000;
    let expected_sum: u64 = (0..N).map(|i| i % 17).sum();
    let mut expected_buckets = [0u64; obs::metrics::HISTOGRAM_BUCKETS];
    for i in 0..N {
        expected_buckets[obs::metrics::Histogram::bucket_of(i % 17)] += 1;
    }

    for round in 0..2u32 {
        let c0 = c.get();
        let h0 = h.snapshot();
        let _: Vec<()> = (0..N)
            .into_par_iter()
            .map(|i| {
                c.inc();
                h.observe(i % 17);
                g.set_max(i);
            })
            .collect();
        let h1 = h.snapshot();
        assert_eq!(c.get() - c0, N, "counter total differs in round {round}");
        assert_eq!(h1.count - h0.count, N);
        assert_eq!(h1.sum - h0.sum, expected_sum);
        for (i, &e) in expected_buckets.iter().enumerate() {
            assert_eq!(
                h1.buckets[i] - h0.buckets[i],
                e,
                "bucket {i} delta differs in round {round}"
            );
        }
        assert_eq!(g.get(), N - 1, "running max is schedule-independent");
    }
}

/// Bucket edges through `observe`: bucket 0 is exactly the value 0, bucket
/// `i >= 1` is `[2^(i-1), 2^i)`, and the top bucket holds `u64::MAX`.
#[test]
fn observe_places_values_in_documented_buckets() {
    obs::metrics::set_enabled(true);
    let h = obs::histogram!("test.buckets.edges");
    let values = [0, 1, 2, 3, 4, 7, 8, (1u64 << 32) - 1, 1u64 << 32, u64::MAX];
    for v in values {
        h.observe(v);
    }
    let s = h.snapshot();
    assert_eq!(s.buckets[0], 1, "bucket 0 holds only the value 0");
    assert_eq!(s.buckets[1], 1, "[1, 2)");
    assert_eq!(s.buckets[2], 2, "[2, 4) holds 2 and 3");
    assert_eq!(s.buckets[3], 2, "[4, 8) holds 4 and 7");
    assert_eq!(s.buckets[4], 1, "[8, 16)");
    assert_eq!(s.buckets[32], 1, "2^32 - 1 lands below the 2^32 edge");
    assert_eq!(s.buckets[33], 1, "2^32 lands on the edge's upper side");
    assert_eq!(s.buckets[64], 1, "top bucket holds u64::MAX");
    assert_eq!(s.count, 10);
    assert_eq!(
        s.buckets.iter().sum::<u64>(),
        s.count,
        "buckets partition all observations"
    );
    // The sum is documented to wrap on overflow; u64::MAX forces a wrap here.
    let expected_sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
    assert_eq!(s.sum, expected_sum);
}

/// `snapshot_json` must parse as JSON and follow the documented shape:
/// schema tag, title, and counters/gauges/histograms sections with
/// histogram objects carrying count/sum and exactly 65 buckets.
#[test]
fn snapshot_json_matches_documented_schema() {
    obs::metrics::set_enabled(true);
    obs::counter!("test.snap.counter").add(5);
    obs::gauge!("test.snap.gauge").set_max(7);
    obs::histogram!("test.snap.hist").observe(900);

    let text = obs::metrics::snapshot_json("unit-test");
    let v: serde_json::Value = serde_json::from_str(&text).expect("snapshot must be valid JSON");

    assert_eq!(
        v.get("schema").and_then(|s| s.as_str()),
        Some(obs::metrics::SNAPSHOT_SCHEMA)
    );
    assert_eq!(v.get("title").and_then(|s| s.as_str()), Some("unit-test"));

    let counters = v.get("counters").expect("counters section");
    assert_eq!(
        counters.get("test.snap.counter").and_then(|c| c.as_u64()),
        Some(5)
    );
    let gauges = v.get("gauges").expect("gauges section");
    assert_eq!(
        gauges.get("test.snap.gauge").and_then(|g| g.as_u64()),
        Some(7)
    );

    let hist = v
        .get("histograms")
        .and_then(|h| h.get("test.snap.hist"))
        .expect("histograms section carries test.snap.hist");
    assert_eq!(hist.get("count").and_then(|c| c.as_u64()), Some(1));
    assert_eq!(hist.get("sum").and_then(|s| s.as_u64()), Some(900));
    let buckets = hist
        .get("buckets")
        .and_then(|b| b.as_array())
        .expect("buckets array");
    assert_eq!(buckets.len(), obs::metrics::HISTOGRAM_BUCKETS);
    assert_eq!(buckets[10].as_u64(), Some(1), "900 lands in [512, 1024)");

    // Section keys are sorted, so two identical runs serialize identically.
    let again = obs::metrics::snapshot_json("unit-test");
    let reparsed: serde_json::Value = serde_json::from_str(&again).unwrap();
    assert_eq!(
        reparsed
            .get("counters")
            .and_then(|c| c.get("test.snap.counter"))
            .and_then(|c| c.as_u64()),
        Some(5)
    );
}
