//! Offline shim implementing the subset of `proptest` this workspace
//! uses: the `proptest!` macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, `any::<T>()`,
//! range strategies, tuple strategies, and `prop::collection::vec`.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with the generated inputs' debug output instead of a minimized
//! counterexample. Generation is seeded from the test name, so failures
//! reproduce deterministically across runs.

use rand::{Rng, RngCore, SeedableRng, StdRng};

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Value generator. `generate` takes `&self` so strategies can be used
/// repeatedly across cases.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_cast {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_via_cast!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let unit: f64 = rng.gen();
        let exp = rng.gen_range(-60i32..60) as f64;
        (unit - 0.5) * exp.exp2()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_range_from {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}
impl_strategy_for_range_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Element-count bounds for `collection::vec`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::{Rng, StdRng};

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Driver called by the code `proptest!` expands to.
pub fn run_proptest<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Seed from the test name: deterministic, distinct per test.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (cfg.cases as u64).saturating_mul(50).max(1000);
    while accepted < cfg.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest `{name}`: gave up after {attempts} attempts \
             ({accepted}/{} cases accepted) — prop_assume! too strict?",
            cfg.cases
        );
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed (case {}): {msg}", accepted + 1)
            }
        }
    }
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(&($cfg), stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(a in 3u8..9, b in 0usize..=4, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_sizes(
            v in prop::collection::vec(any::<u8>(), 2..6),
            w in prop::collection::vec((0u64..10, any::<bool>()), 1..=3),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!((1..=3).contains(&w.len()));
            prop_assert!(w.iter().all(|(x, _)| *x < 10));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn macro_generated_tests_run() {
        ranges_stay_in_bounds();
        vec_strategy_respects_sizes();
        assume_rejects();
    }
}
