//! Offline shim implementing the subset of `serde`'s data model this
//! workspace uses. Instead of serde's zero-copy visitor architecture,
//! values round-trip through a concrete [`Value`] tree (the only formats
//! in play are small JSON documents), which keeps the shim tiny while
//! preserving the property the repo's determinism contract needs:
//! serialization is a pure function of the value, with stable field
//! order (declaration order) and shortest-round-trip float formatting.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::sync::Mutex;
use std::sync::OnceLock;

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered map: field order is declaration order, which
    /// keeps serialized output deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(v) => Some(v),
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array()
            .and_then(|items| items.get(idx))
            .unwrap_or(&NULL_VALUE)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by generated code: field lookup in an object body.
pub fn field<'a>(pairs: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Deserializing into `&'static str` (used by `RunResult`'s interned
/// scheme/workload names) goes through a global intern table, so repeated
/// loads of the same name cost one leak total, not one per load.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        static INTERN: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
        let s = v.as_str().ok_or_else(|| Error::custom("expected string"))?;
        let table = INTERN.get_or_init(|| Mutex::new(HashSet::new()));
        let mut table = table.lock().unwrap();
        if let Some(interned) = table.get(s) {
            return Ok(interned);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        table.insert(leaked);
        Ok(leaked)
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

/// Sets serialize sorted by their rendered element so output is stable
/// across hasher seeds (determinism contract, DESIGN.md §6).
impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(items)
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = match k.to_value() {
                    Value::Str(s) => s,
                    other => format!("{other:?}"),
                };
                (key, v.to_value())
            })
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(Error::custom(format!(
                        "expected {expect}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---- Into<Value> conversions (used by serde_json's `json!`) ---------------

macro_rules! impl_from_for_value {
    ($($t:ty => $variant:ident ($conv:expr)),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::$variant($conv(v)) }
        }
    )*};
}
impl_from_for_value! {
    bool => Bool(|v| v),
    u8 => UInt(|v| v as u64),
    u16 => UInt(|v| v as u64),
    u32 => UInt(|v| v as u64),
    u64 => UInt(|v| v),
    usize => UInt(|v| v as u64),
    i8 => Int(|v| v as i64),
    i16 => Int(|v| v as i64),
    i32 => Int(|v| v as i64),
    i64 => Int(|v| v),
    isize => Int(|v| v as i64),
    f32 => Float(|v| v as f64),
    f64 => Float(|v| v),
    String => Str(|v| v)
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::Str((*v).to_string())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}
