//! Offline shim implementing the subset of `serde_json` this workspace
//! uses: `to_string` / `to_string_pretty` / `to_writer` / `from_str` /
//! `from_slice`, the [`Value`] tree (re-exported from the serde shim),
//! and a `json!` macro for flat object/array literals.
//!
//! Floats are rendered with Rust's `Display`, which produces the
//! shortest string that round-trips to the same `f64` — the property the
//! repo's byte-identical-results contract relies on.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

pub fn to_writer<W: std::io::Write, T: Serialize>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::custom(format!("io error: {e}")))
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse::parse(s)?;
    T::from_value(&value)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("not utf-8: {e}")))?;
    from_str(s)
}

// ---- serializer ------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // "1.0" and "1" both display as "1"; keep valid JSON either way
        // (a bare integer literal is legal JSON for a float).
    } else {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

mod parse {
    use super::{Error, Value};

    pub fn parse(s: &str) -> Result<Value, Error> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::custom(format!("trailing input at byte {pos}")));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                c as char, *pos
            )))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => parse_string(b, pos).map(Value::Str),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| *c as char),
                *pos
            ))),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("bad literal at byte {}", *pos)))
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        expect(b, pos, b'{')?;
        let mut pairs = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            pairs.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", *pos))),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", *pos))),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u codepoint"))?,
                            );
                            *pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of unescaped bytes at once and
                    // validate it as UTF-8 in one pass. (`"` and `\` are
                    // ASCII, so they never occur inside a multi-byte
                    // character — splitting on them is UTF-8 safe. A
                    // per-character `from_utf8(&b[pos..])` here would
                    // re-validate the entire remaining input every
                    // character: quadratic on megabyte-scale strings such
                    // as checkpoint payloads.)
                    let start = *pos;
                    while let Some(c) = b.get(*pos) {
                        if *c == b'"' || *c == b'\\' {
                            break;
                        }
                        *pos += 1;
                    }
                    let run = std::str::from_utf8(&b[start..*pos])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = b.get(*pos) {
            match c {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&b[start..*pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::custom(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::custom(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::custom(format!("bad number `{text}`: {e}")))
        }
    }
}

/// Flat object/array literals with expression values (the only shapes the
/// workspace uses). Values go through `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (String::from($key), $crate::Value::from($val)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = json!({
            "name": "milc",
            "cycles": 12345u64,
            "epi": 3.25f64,
            "neg": -7i64,
            "flag": true,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_shortest_repr() {
        for f in [0.1f64, 1.0 / 3.0, 123.456, 1e-12, 9_007_199_254_740_992.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {s}");
        }
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\u{1}".to_string());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = json!({ "a": 1u64, "b": json!([1u64, 2u64]) });
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("\"a\": 1"));
        let back: Value = from_str(&p).unwrap();
        assert_eq!(v, back);
    }
}
