//! Offline shim implementing the subset of the `rand` 0.8 API this
//! workspace uses: `RngCore`, `SeedableRng`, `Rng::{gen, gen_range,
//! gen_bool, fill}`, and `rngs::StdRng` (xoshiro256++ seeded via
//! SplitMix64). Stream values differ from upstream `rand`; the repo's
//! determinism contract only requires self-consistency, which this
//! provides (pure functions of the seed, no global state).

pub mod rngs;

pub use rngs::StdRng;

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for b in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = b.len();
            b.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used for seed expansion (same role as in upstream rand).
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible by `Rng::gen()`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample_standard(rng))
    }
}

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Lemire-style widening multiply keeps the int paths bias-negligible and
// avoids a modulo in the hot Monte Carlo loops.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample_standard(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(1..=255);
            assert!(w >= 1);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_float_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
