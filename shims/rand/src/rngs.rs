//! `rngs::StdRng`: xoshiro256++ behind the upstream `StdRng` name.

use crate::{RngCore, SeedableRng};

/// Deterministic, fast, non-cryptographic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // The all-zero state is a fixed point; remap it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}
