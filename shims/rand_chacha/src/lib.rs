//! Offline shim providing `ChaCha8Rng`: a genuine ChaCha (8 rounds)
//! stream keyed from a 32-byte seed, zero nonce, 64-bit block counter.
//! Implements the workspace `rand` shim's `RngCore`/`SeedableRng`.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, matching the upstream type name.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 means "refill".
    pos: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16]: nonce, fixed at zero.
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = state;
        self.pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            pos: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(0xECC);
        let mut b = ChaCha8Rng::seed_from_u64(0xECC);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v: u8 = rng.gen_range(1..=255);
        assert!(v >= 1);
        let _: f64 = rng.gen();
    }
}
