//! Offline shim implementing the subset of `criterion` this workspace
//! uses: `Criterion::benchmark_group` / `bench_function`, `Bencher::iter`,
//! `black_box`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs batches
//! whose size doubles until a batch exceeds the measurement window
//! (`CRITERION_SHIM_MS` per benchmark, default 300 ms), and reports the
//! best observed ns/iter (minimum over batches — robust to scheduler
//! noise). If `CRITERION_SHIM_JSON` names a file, all results from the
//! process are appended there as one JSON object per run, which the
//! repo's `BENCH_gf_kernels.json` workflow consumes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    ns_per_iter: f64,
    throughput: Option<Throughput>,
}

#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    filter: Option<String>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        self.run_one(id, None, f);
    }

    fn run_one(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            best_ns_per_iter: f64::INFINITY,
            window: measurement_window(),
        };
        f(&mut bencher);
        let ns = bencher.best_ns_per_iter;
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(b) => format!(
                " ({:.1} MiB/s, {:.3} GiB/s)",
                b as f64 / ns * 953.674_316,
                gib_per_s(b, ns)
            ),
            Throughput::Elements(n) => format!(
                " ({:.1} Melem/s, {:.0} elem/s)",
                n as f64 / ns * 1000.0,
                elems_per_s(n, ns)
            ),
        });
        println!(
            "bench: {id:<48} {ns:>14.1} ns/iter{}",
            rate.unwrap_or_default()
        );
        self.results.push(BenchResult {
            id,
            ns_per_iter: ns,
            throughput,
        });
    }

    fn dump_json(&self) {
        let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
            return;
        };
        if path.is_empty() || self.results.is_empty() {
            return;
        }
        let mut out = String::from("{\n");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let tp = match r.throughput {
                Some(Throughput::Bytes(b)) => format!(
                    ",\"throughput_bytes\":{b},\"gib_per_s\":{:.6}",
                    gib_per_s(b, r.ns_per_iter)
                ),
                Some(Throughput::Elements(n)) => format!(
                    ",\"throughput_elements\":{n},\"elems_per_s\":{:.3}",
                    elems_per_s(n, r.ns_per_iter)
                ),
                None => String::new(),
            };
            out.push_str(&format!(
                "  \"{}\": {{\"ns_per_iter\":{}{tp}}}",
                r.id.replace('"', "'"),
                r.ns_per_iter
            ));
        }
        out.push_str("\n}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion shim: cannot write {path}: {e}");
        }
    }
}

/// Bytes-per-iteration at `ns` per iteration, in binary gibibytes/second.
fn gib_per_s(bytes: u64, ns: f64) -> f64 {
    bytes as f64 / ns * 1e9 / (1u64 << 30) as f64
}

/// Elements (lines, field ops, ...) per second at `ns` per iteration.
fn elems_per_s(elements: u64, ns: f64) -> f64 {
    elements as f64 / ns * 1e9
}

fn measurement_window() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, f);
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    best_ns_per_iter: f64,
    window: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup: run a few iterations so lazy tables/caches settle.
        let warmup_until = Instant::now() + self.window / 10;
        while Instant::now() < warmup_until {
            black_box(routine());
        }
        let deadline = Instant::now() + self.window;
        let mut batch: u64 = 1;
        let mut best = f64::INFINITY;
        let mut measured_once = false;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            // Only trust batches long enough for timer resolution.
            if elapsed >= Duration::from_micros(200) {
                measured_once = true;
                best = best.min(elapsed.as_nanos() as f64 / batch as f64);
            }
            if Instant::now() >= deadline && measured_once {
                break;
            }
            if elapsed < Duration::from_millis(20) {
                batch = batch.saturating_mul(2);
            }
        }
        self.best_ns_per_iter = self.best_ns_per_iter.min(best);
    }
}

/// Runs registered benchmark functions; matches upstream's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new_from_env();
            $( $target(&mut criterion); )+
            criterion.finish_process();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

impl Criterion {
    /// Used by `criterion_group!`: honors a `--bench <filter>`-style first
    /// CLI argument the way `cargo bench -- <filter>` passes it through.
    pub fn new_from_env() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            results: Vec::new(),
            filter,
        }
    }

    pub fn finish_process(&self) {
        self.dump_json();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::remove_var("CRITERION_SHIM_JSON");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("smoke");
            g.throughput(Throughput::Elements(1));
            g.bench_function("sum", |b| {
                b.iter(|| (0..100u64).sum::<u64>());
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].ns_per_iter.is_finite());
        assert!(c.results[0].ns_per_iter > 0.0);
    }

    #[test]
    fn throughput_rate_conversions() {
        // 1 GiB processed in 1 s (1e9 ns) is exactly 1 GiB/s.
        assert!((gib_per_s(1 << 30, 1e9) - 1.0).abs() < 1e-12);
        // 64 bytes in 10 ns = 6.4 GB/s = ~5.96 GiB/s.
        assert!((gib_per_s(64, 10.0) - 5.960_464_477_539_063).abs() < 1e-9);
        // 512 lines in 1 us = 512 Melem/s.
        assert!((elems_per_s(512, 1000.0) - 512e6).abs() < 1e-3);
    }
}
