//! Offline shim implementing the subset of `rayon`'s parallel-iterator
//! API this workspace uses: `into_par_iter()` / `par_iter()` followed by
//! `.map(...)` and a terminal `.collect()` / `.sum()` / `.reduce(...)`.
//!
//! Work is statically partitioned into contiguous chunks across
//! `available_parallelism()` scoped OS threads; results are reassembled
//! in input order, so terminal operations are order-preserving exactly
//! like rayon's indexed parallel iterators. Simulation cells in this
//! repo are coarse (milliseconds to seconds each), so static chunking
//! loses little to rayon's work stealing.

use std::ops::Range;

/// A materialized sequence awaiting a `.map(...)`.
pub struct ParSeq<T> {
    items: Vec<T>,
}

/// A mapped sequence awaiting a terminal operation.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParSeq<T> {
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
    pub fn collect<C: FromIterator<U>>(self) -> C {
        run_ordered(self.items, self.f).into_iter().collect()
    }

    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        run_ordered(self.items, self.f).into_iter().sum()
    }

    pub fn reduce(self, identity: impl Fn() -> U, op: impl Fn(U, U) -> U) -> U {
        run_ordered(self.items, self.f)
            .into_iter()
            .fold(identity(), op)
    }
}

fn run_ordered<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let base = n / threads;
    let extra = n % threads;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    for i in 0..threads {
        let len = base + usize::from(i < extra);
        chunks.push(it.by_ref().take(len).collect());
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            // Propagate worker panics, as rayon does.
            out.extend(h.join().unwrap());
        }
        out
    })
}

/// `collection.into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParSeq<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParSeq<T> {
        ParSeq { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParSeq<&'a T> {
        ParSeq {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParSeq<&'a T> {
        ParSeq {
            items: self.iter().collect(),
        }
    }
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParSeq<$t> {
                ParSeq { items: self.collect() }
            }
        }
    )*};
}
impl_into_par_range!(u32, u64, usize, i32, i64);

/// `collection.par_iter()` for slices (arrays and `Vec` coerce).
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    fn par_iter(&'data self) -> ParSeq<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParSeq<&'data T> {
        ParSeq {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0u64..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let names = ["a", "bb", "ccc"];
        let lens: Vec<usize> = names.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn sum_and_reduce() {
        let s: u64 = (0u64..100).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 4950);
        let r = (0u64..100)
            .into_par_iter()
            .map(|i| i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 4950);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }
}
