//! Offline `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Hand-rolled token parsing (no syn/quote): supports exactly the item
//! shapes this workspace derives on — non-generic named-field structs,
//! tuple structs, unit structs, and enums whose variants are unit or
//! named-field. Unsupported shapes (generics, tuple variants with
//! attributes we don't understand, `#[serde(...)]` attributes) panic at
//! expansion time with a clear message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum Variant {
    Unit(String),
    Named { name: String, fields: Vec<String> },
}

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (item `{name}`)");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde shim derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Field names of a `{ ... }` body, skipping attributes, visibility, and
/// type tokens (tracking `<`/`>` depth so commas inside generics don't
/// split fields).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => panic!("serde shim derive: expected `:` after field, got {other:?}"),
                }
                // Skip the type up to a top-level comma.
                let mut angle_depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("serde shim derive: unexpected token in fields: {other:?}"),
        }
    }
    fields
}

/// Arity of a tuple-struct body (top-level comma count, attribute-aware).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => arity += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        arity -= 1;
    }
    arity
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let vname = id.to_string();
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        variants.push(Variant::Named {
                            name: vname,
                            fields: parse_named_fields(g.stream()),
                        });
                        i += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!("serde shim derive: tuple enum variant `{vname}` is not supported");
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        panic!(
                            "serde shim derive: explicit discriminant on `{vname}` not supported"
                        );
                    }
                    _ => variants.push(Variant::Unit(vname)),
                }
            }
            other => panic!("serde shim derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => {
                        format!("{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),")
                    }
                    Variant::Named { name: vn, fields } => {
                        let binds = fields.join(", ");
                        let pairs: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (String::from(\"{vn}\"), ::serde::Value::Object(vec![{pairs}]))\
                             ]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(obj, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let obj = v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let inits: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let items = v.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if items.len() != {arity} {{\n\
                             return Err(::serde::Error::custom(\"wrong arity for {name}\"));\n\
                         }}\n\
                         Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!("\"{vn}\" => Ok({name}::{vn}),")),
                    _ => None,
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Named { name: vn, fields } => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(obj, \"{f}\")?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{vn}\" => {{\n\
                                 let obj = payload.as_object().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected object payload\"))?;\n\
                                 Ok({name}::{vn} {{ {inits} }})\n\
                             }}"
                        ))
                    }
                    _ => None,
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, payload) = &pairs[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::Error::custom(format!(\n\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::custom(\"bad value for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
