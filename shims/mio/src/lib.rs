//! Offline shim of the `mio` readiness-polling model: the subset
//! `eccparityd`'s evented front-end and `eccparity-loadgen`'s
//! multiplexed client need, implemented directly over `epoll(7)` on
//! Linux with a portable `poll(2)` fallback. This is a *style*-alike,
//! not a drop-in replacement for upstream `mio`: sources are registered
//! by raw fd (anything [`AsRawFd`]), readiness is level-triggered, and
//! there is exactly one [`Waker`] slot per [`Poll`].
//!
//! Backend selection: Linux uses `epoll` unless the
//! `ECC_PARITY_FORCE_POLL=1` knob forces the `poll(2)` backend (the
//! portable path CI exercises so a regression there cannot hide behind
//! epoll); other Unixes always use `poll(2)`.
//!
//! Level-triggered semantics are what the server's interest re-arming
//! relies on: a socket with unread bytes or writable buffer space keeps
//! firing until the interest is changed with [`Poll::reregister`], so a
//! handler that processes only part of the readable data is woken again
//! on the next [`Poll::poll`] call rather than hanging.
//!
//! This crate is the workspace's only home for unsafe FFI to the
//! polling syscalls; `crates/service` stays `#![forbid(unsafe_code)]`.

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---- raw syscall bindings --------------------------------------------------
//
// Bound directly (the workspace vendors no `libc`): signatures and
// constants per the Linux x86-64 ABI, which is the only tier this repo
// builds on in CI. `epoll_event` is packed on x86-64 — getting that
// wrong corrupts every second event's token.

#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---- public surface --------------------------------------------------------

/// Caller-chosen identifier attached to a registration; every readiness
/// [`Event`] carries the token of the source that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for. Combine with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the source has bytes to read (or hit EOF / an error).
    pub const READABLE: Interest = Interest(0b01);
    /// Wake when the source can accept writes without blocking.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Does this interest include the read direction?
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Does this interest include the write direction?
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification. Error and hang-up conditions are folded
/// into *both* directions so the owning handler always runs, observes
/// the failing `read`/`write`, and tears the connection down — there is
/// no separate error event to forget to handle.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
}

impl Event {
    /// Token of the registration that fired.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Reading will make progress (data, EOF, or a reportable error).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Writing will make progress (buffer space or a reportable error).
    pub fn is_writable(&self) -> bool {
        self.writable
    }
}

/// Reusable buffer of readiness notifications filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer returning at most `capacity` events per poll call.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterate the events from the last poll call.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Did the last poll call deliver nothing (timeout or wake)?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

#[derive(Debug, Clone, Copy)]
struct Reg {
    fd: RawFd,
    token: Token,
    interest: Interest,
}

enum Backend {
    Epoll { epfd: RawFd },
    Poll { regs: Mutex<Vec<Reg>> },
}

/// The readiness selector: register sources, then [`Poll::poll`] for
/// events. All methods take `&self`; a `Poll` may be shared behind an
/// `Arc` with a [`Waker`] on another thread.
pub struct Poll {
    backend: Backend,
    /// Read end of the waker pipe (-1 when no waker was created); its
    /// pending bytes are drained inside `poll` so a level-triggered
    /// backend does not spin on an old wake.
    waker_read: AtomicI32,
}

/// `true` when the `ECC_PARITY_FORCE_POLL` knob forces the portable
/// `poll(2)` backend even where epoll is available.
pub fn force_poll_backend() -> bool {
    std::env::var("ECC_PARITY_FORCE_POLL").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

impl Poll {
    /// Open a selector on the platform's best backend (see crate docs).
    pub fn new() -> io::Result<Poll> {
        let use_epoll = cfg!(target_os = "linux") && !force_poll_backend();
        let backend = if use_epoll {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Backend::Epoll { epfd }
        } else {
            Backend::Poll {
                regs: Mutex::new(Vec::new()),
            }
        };
        Ok(Poll {
            backend,
            waker_read: AtomicI32::new(-1),
        })
    }

    /// Which backend this selector runs on (`"epoll"` or `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        match self.backend {
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    /// Start watching `source` for `interest`, tagging events `token`.
    /// The source must already be (and stay) open; it is identified by
    /// raw fd, so dropping it without [`Poll::deregister`] is a bug.
    pub fn register(&self, source: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.register_fd(source.as_raw_fd(), token, interest)
    }

    fn register_fd(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &self.backend {
            Backend::Epoll { epfd } => {
                let mut ev = EpollEvent {
                    events: epoll_mask(interest),
                    data: token.0 as u64,
                };
                cvt(unsafe { epoll_ctl(*epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
            }
            Backend::Poll { regs } => {
                let mut regs = regs.lock().expect("poll registration lock");
                if regs.iter().any(|r| r.fd == fd) {
                    return Err(io::Error::from(io::ErrorKind::AlreadyExists));
                }
                regs.push(Reg { fd, token, interest });
                Ok(())
            }
        }
    }

    /// Change the token and/or interest of an already-registered source.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &self.backend {
            Backend::Epoll { epfd } => {
                let mut ev = EpollEvent {
                    events: epoll_mask(interest),
                    data: token.0 as u64,
                };
                cvt(unsafe { epoll_ctl(*epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
            }
            Backend::Poll { regs } => {
                let mut regs = regs.lock().expect("poll registration lock");
                match regs.iter_mut().find(|r| r.fd == fd) {
                    Some(r) => {
                        r.token = token;
                        r.interest = interest;
                        Ok(())
                    }
                    None => Err(io::Error::from(io::ErrorKind::NotFound)),
                }
            }
        }
    }

    /// Stop watching a source. Must happen before its fd is closed (a
    /// closed fd is auto-removed by epoll but would poison the `poll(2)`
    /// backend's fd list with `POLLNVAL`).
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        match &self.backend {
            Backend::Epoll { epfd } => {
                let mut ev = EpollEvent { events: 0, data: 0 };
                cvt(unsafe { epoll_ctl(*epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
            }
            Backend::Poll { regs } => {
                let mut regs = regs.lock().expect("poll registration lock");
                let before = regs.len();
                regs.retain(|r| r.fd != fd);
                if regs.len() == before {
                    return Err(io::Error::from(io::ErrorKind::NotFound));
                }
                Ok(())
            }
        }
    }

    /// Block until at least one registered source is ready, the timeout
    /// elapses (`events` left empty), or a [`Waker`] fires. Waker bytes
    /// are drained here; the waker's event is still delivered so the
    /// loop can distinguish a wake from a timeout.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 1ns timeout still sleeps rather than spins.
            Some(d) => {
                let round_up = u128::from(d.subsec_nanos() % 1_000_000 != 0);
                (d.as_millis() + round_up).min(i32::MAX as u128) as i32
            }
        };
        match &self.backend {
            Backend::Epoll { epfd } => {
                let mut raw = vec![EpollEvent { events: 0, data: 0 }; events.capacity];
                let n = loop {
                    let r = unsafe {
                        epoll_wait(*epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms)
                    };
                    if r >= 0 {
                        break r as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &raw[..n] {
                    let bits = ev.events;
                    events.inner.push(Event {
                        token: Token(ev.data as usize),
                        readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                        writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    });
                }
            }
            Backend::Poll { regs } => {
                let snapshot: Vec<Reg> = regs.lock().expect("poll registration lock").clone();
                let mut fds: Vec<PollFd> = snapshot
                    .iter()
                    .map(|r| PollFd {
                        fd: r.fd,
                        events: (if r.interest.is_readable() { POLLIN } else { 0 })
                            | (if r.interest.is_writable() { POLLOUT } else { 0 }),
                        revents: 0,
                    })
                    .collect();
                let n = loop {
                    let r = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                    if r >= 0 {
                        break r as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                if n > 0 {
                    for (pfd, reg) in fds.iter().zip(&snapshot) {
                        let got = pfd.revents;
                        if got == 0 {
                            continue;
                        }
                        if events.inner.len() == events.capacity {
                            break;
                        }
                        events.inner.push(Event {
                            token: reg.token,
                            readable: got & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0,
                            writable: got & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0,
                        });
                    }
                }
            }
        }
        let waker_fd = self.waker_read.load(Ordering::Acquire);
        if waker_fd >= 0 && events.inner.iter().any(|e| e.readable) {
            // Drain any pending wake bytes (nonblocking read-until-empty).
            let mut buf = [0u8; 64];
            while unsafe { read(waker_fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
        Ok(())
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        if let Backend::Epoll { epfd } = self.backend {
            unsafe { close(epfd) };
        }
        let waker_fd = self.waker_read.load(Ordering::Acquire);
        if waker_fd >= 0 {
            unsafe { close(waker_fd) };
        }
    }
}

fn epoll_mask(interest: Interest) -> u32 {
    let mut m = 0;
    if interest.is_readable() {
        m |= EPOLLIN | EPOLLRDHUP;
    }
    if interest.is_writable() {
        m |= EPOLLOUT;
    }
    m
}

struct WakerInner {
    write_fd: RawFd,
}

impl Drop for WakerInner {
    fn drop(&mut self) {
        unsafe { close(self.write_fd) };
    }
}

/// Cross-thread wakeup for a [`Poll`]: a nonblocking self-pipe whose
/// read end is registered like any other source. Cheap to clone; any
/// clone's [`Waker::wake`] interrupts the owning `poll` call, which
/// then sees an event carrying the waker's token.
#[derive(Clone)]
pub struct Waker {
    inner: Arc<WakerInner>,
}

impl Waker {
    /// Create the waker for `poll`, delivering wake events as `token`.
    /// One waker per `Poll` (a second call replaces which pipe gets
    /// drained and leaks the first's read registration — don't).
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let mut fds = [-1i32; 2];
        cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        let (read_fd, write_fd) = (fds[0], fds[1]);
        if let Err(e) = poll.register_fd(read_fd, token, Interest::READABLE) {
            unsafe {
                close(read_fd);
                close(write_fd);
            }
            return Err(e);
        }
        poll.waker_read.store(read_fd, Ordering::Release);
        Ok(Waker {
            inner: Arc::new(WakerInner { write_fd }),
        })
    }

    /// Interrupt the owning `Poll::poll` call. Idempotent while a wake
    /// is already pending (the pipe is nonblocking; a full pipe already
    /// guarantees a wakeup is due).
    pub fn wake(&self) -> io::Result<()> {
        let n = unsafe { write(self.inner.write_fd, [1u8].as_ptr(), 1) };
        if n == 1 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::unix::net::UnixStream;

    fn backends() -> Vec<Poll> {
        let mut v = vec![];
        // Default backend (epoll on Linux), then the portable fallback,
        // constructed directly so the test does not mutate process env.
        v.push(Poll::new().unwrap());
        v.push(Poll {
            backend: Backend::Poll {
                regs: Mutex::new(Vec::new()),
            },
            waker_read: AtomicI32::new(-1),
        });
        v
    }

    #[test]
    fn readable_when_peer_writes_and_on_eof() {
        for poll in backends() {
            let (mut a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poll.register(&b, Token(7), Interest::READABLE).unwrap();
            let mut events = Events::with_capacity(8);

            // Nothing pending: a zero timeout returns empty.
            poll.poll(&mut events, Some(Duration::from_millis(0))).unwrap();
            assert!(events.is_empty(), "{}", poll.backend_name());

            a.write_all(b"hi").unwrap();
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            let ev = events.iter().next().expect("readable event");
            assert_eq!(ev.token(), Token(7));
            assert!(ev.is_readable());
            let mut buf = [0u8; 8];
            let mut br = &b;
            assert_eq!(br.read(&mut buf).unwrap(), 2);

            // EOF must also read as readable so handlers observe it.
            drop(a);
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(events.iter().any(|e| e.token() == Token(7) && e.is_readable()));
            poll.deregister(&b).unwrap();
        }
    }

    #[test]
    fn writable_interest_and_reregister() {
        for poll in backends() {
            let (a, b) = UnixStream::pair().unwrap();
            a.set_nonblocking(true).unwrap();
            poll.register(&a, Token(1), Interest::READABLE).unwrap();
            let mut events = Events::with_capacity(8);
            // Read-only interest: a writable-but-silent socket is quiet.
            poll.poll(&mut events, Some(Duration::from_millis(0))).unwrap();
            assert!(events.is_empty(), "{}", poll.backend_name());
            // Re-arm for writes: an empty send buffer fires immediately.
            poll.reregister(&a, Token(2), Interest::READABLE | Interest::WRITABLE)
                .unwrap();
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            let ev = events.iter().next().expect("writable event");
            assert_eq!(ev.token(), Token(2));
            assert!(ev.is_writable());
            poll.deregister(&a).unwrap();
            drop(b);
        }
    }

    #[test]
    fn waker_interrupts_a_long_poll() {
        for poll in backends() {
            let poll = Arc::new(poll);
            let waker = Waker::new(&poll, Token(0)).unwrap();
            let w2 = waker.clone();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                w2.wake().unwrap();
            });
            let mut events = Events::with_capacity(4);
            let t0 = std::time::Instant::now();
            poll.poll(&mut events, Some(Duration::from_secs(30))).unwrap();
            assert!(t0.elapsed() < Duration::from_secs(10));
            assert!(events.iter().any(|e| e.token() == Token(0)));
            // The wake byte was drained: the next zero-timeout poll is quiet.
            poll.poll(&mut events, Some(Duration::from_millis(0))).unwrap();
            assert!(
                !events.iter().any(|e| e.token() == Token(0)),
                "{}",
                poll.backend_name()
            );
            t.join().unwrap();
        }
    }

    #[test]
    fn double_wake_coalesces_and_repeated_wakes_never_block() {
        for poll in backends() {
            let poll = Arc::new(poll);
            let waker = Waker::new(&poll, Token(9)).unwrap();
            for _ in 0..100_000 {
                waker.wake().unwrap();
            }
            let mut events = Events::with_capacity(4);
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(events.iter().any(|e| e.token() == Token(9)));
        }
    }
}
