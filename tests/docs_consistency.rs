//! Documentation consistency gates.
//!
//! Docs rot when nothing fails on drift, so three properties are
//! enforced here rather than promised in review:
//!
//! 1. **Knob coverage** — every environment variable the source reads
//!    (`ECC_PARITY_*`, `SOAK_DEBUG`, `CRITERION_SHIM_*`) appears in
//!    `docs/KNOBS.md`, and the doc names no knob the source has
//!    dropped.
//! 2. **Schema examples parse** — every ```json block in
//!    `docs/SCHEMAS.md` is strict JSON (the example payloads stay
//!    machine-checkable, not decorative).
//! 3. **Links resolve** — every relative markdown link in the
//!    top-level docs and `docs/` points at a file that exists.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// All `.rs` files under the repo's source trees (not `target/`).
fn source_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = ["src", "crates", "shims", "tests", "examples"]
        .iter()
        .map(|d| root.join(d))
        .filter(|d| d.is_dir())
        .collect();
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("read source dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    assert!(
        out.len() > 50,
        "source walk looks broken: {} files",
        out.len()
    );
    out
}

/// Extract every occurrence of `prefix` followed by uppercase/underscore
/// characters from `text`.
fn extract_with_prefix(text: &str, prefix: &str, into: &mut BTreeSet<String>) {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(prefix) {
        let start = from + pos;
        let mut end = start + prefix.len();
        while end < bytes.len() && (bytes[end].is_ascii_uppercase() || bytes[end] == b'_') {
            end += 1;
        }
        // Trim a trailing underscore: `ECC_PARITY_` in a format string or
        // prose is a prefix mention, not a knob name.
        let mut name = &text[start..end];
        while name.ends_with('_') {
            name = &name[..name.len() - 1];
        }
        if name.len() > prefix.len() {
            into.insert(name.to_string());
        }
        from = end;
    }
}

/// Every knob-shaped string in the workspace source.
fn knobs_in_source() -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    for path in source_files() {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        extract_with_prefix(&text, "ECC_PARITY_", &mut found);
        extract_with_prefix(&text, "CRITERION_SHIM_", &mut found);
        if text.contains("SOAK_DEBUG") {
            found.insert("SOAK_DEBUG".to_string());
        }
    }
    found
}

#[test]
fn every_source_knob_is_documented() {
    let doc_path = repo_root().join("docs/KNOBS.md");
    let doc = std::fs::read_to_string(&doc_path).expect("read docs/KNOBS.md");
    let source_knobs = knobs_in_source();
    assert!(
        source_knobs.contains("ECC_PARITY_METRICS"),
        "knob extraction found nothing plausible: {source_knobs:?}"
    );

    let undocumented: Vec<&String> = source_knobs
        .iter()
        .filter(|k| !doc.contains(k.as_str()))
        .collect();
    assert!(
        undocumented.is_empty(),
        "knobs read by source but missing from docs/KNOBS.md: {undocumented:?}"
    );

    // The reverse direction: the doc must not advertise knobs the source
    // no longer reads.
    let mut doc_knobs = BTreeSet::new();
    extract_with_prefix(&doc, "ECC_PARITY_", &mut doc_knobs);
    extract_with_prefix(&doc, "CRITERION_SHIM_", &mut doc_knobs);
    let stale: Vec<&String> = doc_knobs
        .iter()
        .filter(|k| !source_knobs.contains(k.as_str()))
        .collect();
    assert!(
        stale.is_empty(),
        "docs/KNOBS.md documents knobs no source file reads: {stale:?}"
    );
}

/// The ```json fenced blocks of a markdown document, with the line
/// number each block starts on.
fn json_blocks(text: &str) -> Vec<(usize, String)> {
    let mut blocks = Vec::new();
    let mut current: Option<(usize, String)> = None;
    for (idx, line) in text.lines().enumerate() {
        match &mut current {
            None if line.trim() == "```json" => current = Some((idx + 1, String::new())),
            Some((start, body)) => {
                if line.trim() == "```" {
                    blocks.push((*start, std::mem::take(body)));
                    current = None;
                } else {
                    body.push_str(line);
                    body.push('\n');
                }
            }
            None => {}
        }
    }
    assert!(current.is_none(), "unterminated ```json block");
    blocks
}

#[test]
fn schema_examples_are_valid_json() {
    let path = repo_root().join("docs/SCHEMAS.md");
    let text = std::fs::read_to_string(&path).expect("read docs/SCHEMAS.md");
    let blocks = json_blocks(&text);
    assert!(
        blocks.len() >= 10,
        "expected an example per schema section, found {} json blocks",
        blocks.len()
    );
    for (line, body) in blocks {
        // A block may hold several one-line examples (JSONL formats);
        // each non-empty line must parse on its own unless the block is
        // one pretty-printed object.
        let parsed_whole = serde_json::from_str::<serde_json::Value>(&body);
        if parsed_whole.is_ok() {
            continue;
        }
        for (off, l) in body.lines().enumerate() {
            if l.trim().is_empty() {
                continue;
            }
            serde_json::from_str::<serde_json::Value>(l).unwrap_or_else(|e| {
                panic!(
                    "docs/SCHEMAS.md json block at line {} (example line {}): {e}",
                    line,
                    line + off + 1
                )
            });
        }
    }
}

/// Relative link targets of a markdown document: the `](target)` parts,
/// minus external URLs and pure in-page anchors.
fn relative_links(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find("](") {
        let start = from + pos + 2;
        let Some(len) = text[start..].find(')') else {
            break;
        };
        let target = &text[start..start + len];
        from = start + len;
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with('#')
            || target.is_empty()
        {
            continue;
        }
        out.push(target.to_string());
    }
    out
}

#[test]
fn markdown_links_resolve() {
    let root = repo_root();
    let mut docs: Vec<PathBuf> = [
        "README.md",
        "ARCHITECTURE.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "ROADMAP.md",
        "CHANGES.md",
    ]
    .iter()
    .map(|f| root.join(f))
    .filter(|p| p.is_file())
    .collect();
    for entry in std::fs::read_dir(root.join("docs")).expect("read docs/") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            docs.push(path);
        }
    }
    assert!(docs.len() >= 6, "doc walk looks broken: {docs:?}");

    let mut broken = Vec::new();
    for doc in &docs {
        let text =
            std::fs::read_to_string(doc).unwrap_or_else(|e| panic!("read {}: {e}", doc.display()));
        let base = doc.parent().unwrap_or(Path::new(""));
        for link in relative_links(&text) {
            let file = link.split('#').next().unwrap_or(&link);
            if file.is_empty() {
                continue; // same-page anchor
            }
            if !base.join(file).exists() {
                broken.push(format!("{} -> {link}", doc.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative markdown links:\n{}",
        broken.join("\n")
    );
}
