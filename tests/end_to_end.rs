//! Cross-crate integration tests: the full stack from fault sampling
//! (`mem-faults`) through the functional ECC Parity memory (`ecc-parity` +
//! `ecc-codes`) and the full-system simulator (`mem-sim` + `dram-sim`).

use ecc_parity_repro::ecc_codes::lotecc::LotEcc;
use ecc_parity_repro::ecc_codes::raim::RaimParityCode;
use ecc_parity_repro::ecc_parity::layout::LineLoc;
use ecc_parity_repro::ecc_parity::memory::{ParityConfig, ParityMemory};
use ecc_parity_repro::mem_faults::{FaultMode, FitTable, LifetimeSim, SystemGeometry};
use ecc_parity_repro::mem_sim::{
    CoreConfig, LlcConfig, RunConfig, SchemeConfig, SchemeId, SimRunner, SystemScale, WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drive a sampled 7-year fault history through the functional memory:
/// whatever faults arrive, no read may ever return wrong data silently —
/// it either corrects, reports uncorrectable, or the page was retired.
#[test]
fn monte_carlo_fault_history_never_corrupts_silently() {
    let cfg = ParityConfig {
        channels: 4,
        banks_per_channel: 8,
        data_rows: 6,
        lines_per_row: 4,
        threshold: 4,
    };
    let geo = SystemGeometry {
        channels: 4,
        ranks_per_channel: 1,
        chips_per_rank: 5,
        banks_per_chip: 8,
    };
    // Inflated FIT so every sampled lifetime has a few hundred faults
    // (kept moderate: the overlay model pays O(faults) per read, and this
    // test runs in debug CI).
    let sim = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE.scaled_to(250_000.0));
    let mut rng = StdRng::seed_from_u64(321);

    for trial in 0..3u64 {
        let mut mem = ParityMemory::new(LotEcc::five(), cfg);
        let mut shadow = std::collections::HashMap::new();
        for c in 0..cfg.channels {
            for bank in 0..cfg.banks_per_channel {
                for row in 0..cfg.data_rows {
                    for line in 0..cfg.lines_per_row {
                        let d: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
                        mem.write(c, LineLoc { bank, row, line }, &d).unwrap();
                        shadow.insert((c, bank, row, line), d);
                    }
                }
            }
        }
        let mut ev_rng = StdRng::seed_from_u64(trial * 7 + 1);
        let events = sim.sample(&mut ev_rng);
        // Interleave faults with scrubs, as wall-clock would.
        for chunk in events.chunks(2) {
            for e in chunk {
                // Clamp coordinates into the toy geometry.
                let mut f = e.fault;
                f.row %= cfg.data_rows;
                f.line %= cfg.lines_per_row;
                mem.inject_fault(f);
            }
            mem.scrub();
        }
        mem.scrub();
        // Every surviving (non-retired) read is either bit-exact or an
        // explicit error.
        for ((c, bank, row, line), d) in &shadow {
            let loc = LineLoc {
                bank: *bank,
                row: *row,
                line: *line,
            };
            if mem.health().is_retired(*c, *bank, *row) {
                continue;
            }
            // Err = explicit uncorrectable: allowed, counted.
            if let Ok(got) = mem.read(*c, loc) {
                assert_eq!(&got, d, "silent corruption at {c}/{loc:?}");
            }
        }
        // Capacity accounting stays within sane bounds. The ceiling is the
        // formula's saturation point — every pair migrated (2R) plus every
        // page retired (1.0) on top of the fixed detection + parity terms —
        // which this catastrophic history (hundreds of overlapping faults on
        // a 192-page toy memory) legitimately approaches now that scrub
        // retires beyond-envelope pages in migrated banks instead of
        // skipping them.
        let overhead = mem.capacity_overhead();
        assert!((0.125..2.0).contains(&overhead), "overhead {overhead}");
    }
}

/// ECC Parity generalizes across underlying codes: the same memory model
/// runs with the RAIM-style DIMM-kill code (R = 0.5) and survives a
/// half-rank (DIMM) failure.
#[test]
fn raim_underlying_code_survives_dimm_kill_through_parity() {
    let cfg = ParityConfig::small(5); // five logical channels, as Table II
    let mut mem = ParityMemory::new(RaimParityCode::new(), cfg);
    let mut rng = StdRng::seed_from_u64(5);
    let loc = LineLoc {
        bank: 0,
        row: 1,
        line: 2,
    };
    let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
    mem.write(2, loc, &data).unwrap();
    // Chips 0..9 form DIMM A: kill one whole chip of it across the bank.
    mem.inject_fault(ecc_parity_repro::mem_faults::FaultInstance {
        chip: ecc_parity_repro::mem_faults::ChipLocation {
            channel: 2,
            rank: 0,
            chip: 4,
        },
        mode: FaultMode::SingleBank,
        bank: 0,
        row: 0,
        line: 0,
        pattern_seed: 777,
    });
    assert_eq!(mem.read(2, loc).unwrap(), data);
    assert!(mem.stats().parity_reconstructions >= 1);
}

/// The simulator's energy accounting must respect physical orderings across
/// schemes regardless of workload: 36 devices per access can never be
/// cheaper in dynamic energy per access than 5 devices.
#[test]
fn dynamic_energy_per_access_ordering_is_physical() {
    let w = WorkloadSpec::by_name("milc").unwrap();
    let run = |id| {
        let mut cfg = RunConfig::paper(SchemeConfig::build(id, SystemScale::QuadEquivalent), w);
        cfg.cores = 2;
        cfg.warmup_per_core = 2_000;
        cfg.accesses_per_core = 6_000;
        SimRunner::new(cfg).run()
    };
    let ck36 = run(SchemeId::Ck36);
    let lot5p = run(SchemeId::Lot5Parity);
    let per_access_36 = ck36.energy.dynamic_pj() / ck36.mem_requests as f64;
    let per_access_5 = lot5p.energy.dynamic_pj() / lot5p.mem_requests as f64;
    assert!(
        per_access_36 > 3.0 * per_access_5,
        "36 x4 chips/access must dwarf 5 wide chips: {per_access_36:.0} vs {per_access_5:.0} pJ"
    );
}

/// Scheme glue consistency: inline schemes never emit ECC traffic; parity
/// schemes emit matched read/write parity traffic; LOT/Multi emit
/// write-only ECC traffic. (Checked across every scheme at once.)
#[test]
fn ecc_traffic_classes_hold_for_every_scheme() {
    let w = WorkloadSpec::by_name("lbm").unwrap();
    for id in SchemeId::ALL {
        let built = SchemeConfig::build(id, SystemScale::QuadEquivalent);
        let line_bytes = built.mem.line_bytes;
        let mut cfg = RunConfig::paper(built, w);
        cfg.cores = 2;
        cfg.warmup_per_core = 3_000;
        cfg.accesses_per_core = 6_000;
        cfg.llc = Some(LlcConfig {
            capacity_bytes: 128 * 1024,
            ways: 16,
            line_bytes,
        });
        let r = SimRunner::new(cfg).run();
        match id {
            SchemeId::Ck36 | SchemeId::Ck18 | SchemeId::Raim => {
                assert_eq!(
                    r.traffic.ecc_read_units + r.traffic.ecc_write_units,
                    0,
                    "{id:?}"
                );
            }
            SchemeId::Lot5 | SchemeId::Lot9 | SchemeId::MultiEcc => {
                assert!(
                    r.traffic.ecc_write_units > 0,
                    "{id:?} must update ECC lines"
                );
                assert_eq!(
                    r.traffic.ecc_read_units, 0,
                    "{id:?} evictions are write-only"
                );
            }
            SchemeId::Lot5Parity | SchemeId::RaimParity => {
                assert!(r.traffic.ecc_read_units > 0, "{id:?} parity RMW reads");
                assert_eq!(
                    r.traffic.ecc_read_units, r.traffic.ecc_write_units,
                    "{id:?} one read per write"
                );
            }
        }
    }
}

/// Full determinism across the whole stack: identical seeds produce
/// identical energies, cycle counts, and traffic, even with rayon-style
/// parallel invocation order differences.
#[test]
fn whole_stack_determinism() {
    let w = WorkloadSpec::by_name("canneal").unwrap();
    let mk = || {
        let mut cfg = RunConfig::paper(
            SchemeConfig::build(SchemeId::Lot5Parity, SystemScale::DualEquivalent),
            w,
        );
        cfg.cores = 3;
        cfg.warmup_per_core = 2_000;
        cfg.accesses_per_core = 4_000;
        cfg.core_config = CoreConfig::default();
        SimRunner::new(cfg).run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.energy, b.energy);
    assert_eq!(a.instructions, b.instructions);
}
