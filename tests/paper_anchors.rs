//! Paper-anchor regression tests: the quantitative claims of the paper that
//! this reproduction pins down, checked end to end at reduced scale. These
//! are intentionally loose bounds — the full-resolution numbers live in the
//! `eccparity-bench` binaries and EXPERIMENTS.md — but they fail loudly if
//! a change breaks a reproduced *shape*.

use ecc_parity_repro::ecc_codes::OverheadModel;
use ecc_parity_repro::mem_faults::SystemGeometry;
use ecc_parity_repro::mem_sim::{
    RunConfig, SchemeConfig, SchemeId, SimRunner, SystemScale, WorkloadSpec,
};
use ecc_parity_repro::resilience_analysis::scrub::analytic_window_probability;
use ecc_parity_repro::resilience_analysis::{analytic_mtbf_hours, fig8_point, table3_rows};

#[test]
fn table3_static_overheads() {
    // The five headline capacity numbers of Table III.
    let check = |r: f64, n: usize, expect: f64| {
        let v = OverheadModel::ecc_parity(r, n).total();
        assert!((v - expect).abs() < 5e-3, "R={r} N={n}: {v} vs {expect}");
    };
    check(0.25, 8, 0.165); // 8-chan LOT-ECC5 + Parity
    check(0.25, 4, 0.219); // 4-chan
    check(0.5, 10, 0.188); // 10-chan RAIM + Parity
    check(0.5, 5, 0.266); // 5-chan
    for row in table3_rows(0, 0) {
        assert!(
            (row.static_overhead - row.paper_value).abs() < 0.002,
            "{}",
            row.name
        );
    }
}

#[test]
fn fig2_mean_time_between_channel_faults_anchor() {
    // 8x4x9 at 44 FIT: ~3,750 days; scales inversely with the rate.
    let geo = SystemGeometry::paper_reliability();
    let days = analytic_mtbf_hours(&geo, 44.0) / 24.0;
    assert!((3_000.0..4_500.0).contains(&days), "got {days}");
    let days800 = analytic_mtbf_hours(&geo, 800.0) / 24.0;
    assert!(
        (150.0..300.0).contains(&days800),
        "100s of days at high FIT"
    );
}

#[test]
fn fig8_migrated_fraction_anchor() {
    // ~0.4% of memory migrates to stored correction bits over 7 years.
    let p = fig8_point(8, 8_000, 1234);
    assert!(
        (0.001..0.01).contains(&p.mean_fraction),
        "mean migrated fraction {}",
        p.mean_fraction
    );
}

#[test]
fn fig18_and_section6c_anchor() {
    // 8h scrub at 100 FIT: ~2e-4 multi-channel coincidence per 7 years.
    let geo = SystemGeometry::paper_reliability();
    let p = analytic_window_probability(&geo, 100.0, 8.0);
    assert!((1e-4..4e-4).contains(&p), "got {p:e}");
}

fn quick_run(id: SchemeId, w: &WorkloadSpec) -> ecc_parity_repro::mem_sim::RunResult {
    let mut cfg = RunConfig::paper(SchemeConfig::build(id, SystemScale::QuadEquivalent), *w);
    cfg.cores = 4;
    cfg.warmup_per_core = 8_000;
    cfg.accesses_per_core = 15_000;
    SimRunner::new(cfg).run()
}

#[test]
fn fig10_headline_epi_reductions() {
    // Bin2 workload: LOT-ECC5+Parity cuts memory EPI vs 36-device
    // commercial chipkill by roughly half or more (paper: 59.5% Bin2 avg),
    // and vs the 18-device baseline by roughly a third or more (paper:
    // 48.9%). RAIM+Parity lands in the tens of percent (paper: 22.6%).
    let w = WorkloadSpec::by_name("milc").unwrap();
    let ck36 = quick_run(SchemeId::Ck36, &w);
    let ck18 = quick_run(SchemeId::Ck18, &w);
    let lot5p = quick_run(SchemeId::Lot5Parity, &w);
    let raim = quick_run(SchemeId::Raim, &w);
    let raimp = quick_run(SchemeId::RaimParity, &w);

    let red36 = 1.0 - lot5p.epi_pj() / ck36.epi_pj();
    let red18 = 1.0 - lot5p.epi_pj() / ck18.epi_pj();
    let redraim = 1.0 - raimp.epi_pj() / raim.epi_pj();
    assert!(red36 > 0.45, "vs 36-dev: {:.1}%", red36 * 100.0);
    assert!(red18 > 0.30, "vs 18-dev: {:.1}%", red18 * 100.0);
    assert!(
        (0.10..0.45).contains(&redraim),
        "RAIM+P vs RAIM: {:.1}%",
        redraim * 100.0
    );
}

#[test]
fn fig10_lot5_parity_tracks_lot5_energy() {
    // Paper: "the memory EPI of LOT-ECC5+ECC Parity is similar to that of
    // LOT-ECC5" — the parity's win is capacity, not energy.
    let w = WorkloadSpec::by_name("leslie3d").unwrap();
    let lot5 = quick_run(SchemeId::Lot5, &w);
    let lot5p = quick_run(SchemeId::Lot5Parity, &w);
    let rel = (lot5p.epi_pj() - lot5.epi_pj()).abs() / lot5.epi_pj();
    assert!(rel < 0.15, "EPI gap {:.1}%", rel * 100.0);
}

#[test]
fn fig16_traffic_shapes() {
    // LOT5+Parity needs MORE 64B accesses/instruction than the overhead-
    // free 18-device baseline (paper: +13.3%) and FEWER than the 128B-line
    // 36-device organization on a moderate-locality workload (paper: -20%).
    let w = WorkloadSpec::by_name("GemsFDTD").unwrap();
    let ck36 = quick_run(SchemeId::Ck36, &w);
    let ck18 = quick_run(SchemeId::Ck18, &w);
    let lot5p = quick_run(SchemeId::Lot5Parity, &w);
    let u = |r: &ecc_parity_repro::mem_sim::RunResult| r.units_per_instruction();
    assert!(u(&lot5p) > u(&ck18), "ECC updates cost traffic");
    assert!(u(&lot5p) < u(&ck36), "128B lines overfetch");
}

#[test]
fn fig17_dual_channel_overhead_exceeds_quad() {
    // Fewer channels share each parity -> each XOR cacheline covers fewer
    // lines -> more evictions (paper's Fig 17 vs Fig 16 observation).
    let w = WorkloadSpec::by_name("milc").unwrap();
    let run_scale = |scale| {
        let mut cfg = RunConfig::paper(SchemeConfig::build(SchemeId::Lot5Parity, scale), w);
        cfg.cores = 4;
        cfg.warmup_per_core = 8_000;
        cfg.accesses_per_core = 15_000;
        SimRunner::new(cfg).run()
    };
    let quad = run_scale(SystemScale::QuadEquivalent);
    let dual = run_scale(SystemScale::DualEquivalent);
    let ecc_share = |r: &ecc_parity_repro::mem_sim::RunResult| {
        (r.traffic.ecc_read_units + r.traffic.ecc_write_units) as f64
            / (r.traffic.data_read_units + r.traffic.data_write_units) as f64
    };
    assert!(
        ecc_share(&dual) > ecc_share(&quad),
        "dual {:.3} must exceed quad {:.3}",
        ecc_share(&dual),
        ecc_share(&quad)
    );
}

#[test]
fn capacity_overhead_consistent_between_crates() {
    // The functional memory's accounting must agree with the closed form
    // used by the analysis crate.
    use ecc_parity_repro::ecc_codes::lotecc::LotEcc;
    use ecc_parity_repro::ecc_parity::memory::{ParityConfig, ParityMemory};
    for channels in [4usize, 8] {
        let mem = ParityMemory::new(LotEcc::five(), ParityConfig::small(channels));
        let formula = OverheadModel::ecc_parity(0.25, channels).total();
        assert!(
            (mem.capacity_overhead() - formula).abs() < 1e-9,
            "channels={channels}"
        );
    }
}
