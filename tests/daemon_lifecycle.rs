//! Daemon lifecycle tests: the `eccparityd` + `eccparity-loadgen` pair,
//! exercised as real processes over a real Unix socket.
//!
//! Three properties the daemon documents and CI's `daemon-smoke` job
//! re-checks at scale:
//!
//! 1. **Shard-partition determinism** — the same event stream produces
//!    byte-identical query transcripts regardless of `--shards`.
//! 2. **Kill-and-restart equality** — checkpoint, SIGKILL, restart with
//!    `--resume` (even at a different shard count) answers queries
//!    byte-identically to a daemon that was never killed.
//! 3. **Malformed-event rejection** — garbage lines get error responses
//!    and rejection counters, never a dead shard or daemon.
//!
//! Event volumes are kept small (tens of thousands) so the suite stays
//! well under a second of ingest; the ≥1M events/s throughput gate lives
//! in CI where the measurement is meaningful, with only a generous
//! ~50k events/s sanity floor here (slow CI boxes under load must not
//! flake tier-1).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn daemon_bin() -> &'static str {
    env!("CARGO_BIN_EXE_eccparityd")
}

fn loadgen_bin() -> &'static str {
    env!("CARGO_BIN_EXE_eccparity-loadgen")
}

/// Scratch directory unique to one test.
fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("eccparityd-lifecycle-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn start_daemon(sock: &Path, shards: u32, state_dir: Option<&Path>, resume: bool) -> Child {
    let mut cmd = Command::new(daemon_bin());
    cmd.arg("--socket")
        .arg(sock)
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--name")
        .arg("lifecycle")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(dir) = state_dir {
        cmd.arg("--state-dir").arg(dir);
    }
    if resume {
        cmd.arg("--resume");
    }
    let child = cmd.spawn().expect("spawn eccparityd");
    // Wait for the listener: the socket file appearing means bind() ran.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {sock:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    child
}

/// Run the loadgen with `args`; returns stdout. Panics on nonzero exit.
fn loadgen(sock: &Path, args: &[&str]) -> String {
    let out = Command::new(loadgen_bin())
        .arg("--socket")
        .arg(sock)
        .args(args)
        .output()
        .expect("run eccparity-loadgen");
    assert!(
        out.status.success(),
        "loadgen {:?} failed: {}\n{}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn same_stream_same_transcript_across_shard_counts() {
    let dir = scratch("shards");
    let mut transcripts = Vec::new();
    for shards in [1u32, 3, 8] {
        let sock = dir.join(format!("d{shards}.sock"));
        let out = dir.join(format!("q{shards}.txt"));
        let mut daemon = start_daemon(&sock, shards, None, false);
        loadgen(
            &sock,
            &[
                "--events",
                "40000",
                "--nodes",
                "64",
                "--seed",
                "11",
                "--min-rate",
                "50000",
                "--queries",
                out.to_str().unwrap(),
                "--shutdown",
            ],
        );
        assert!(daemon.wait().expect("daemon exit").success());
        transcripts.push(std::fs::read_to_string(&out).expect("read transcript"));
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "1-shard and 3-shard transcripts differ"
    );
    assert_eq!(
        transcripts[1], transcripts[2],
        "3-shard and 8-shard transcripts differ"
    );
    assert!(transcripts[0].contains("\"op\":\"fleet\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_then_resume_matches_unkilled_golden() {
    let dir = scratch("kill");
    let ingest: &[&str] = &[
        "--events",
        "40000",
        "--nodes",
        "64",
        "--seed",
        "23",
        "--checkpoint",
    ];

    // Golden: ingest, checkpoint, query, clean shutdown — never killed.
    let golden_sock = dir.join("golden.sock");
    let golden_out = dir.join("golden.txt");
    let mut daemon = start_daemon(&golden_sock, 4, Some(&dir.join("golden-state")), false);
    let mut args = ingest.to_vec();
    args.extend(["--queries", golden_out.to_str().unwrap(), "--shutdown"]);
    loadgen(&golden_sock, &args);
    assert!(daemon.wait().expect("daemon exit").success());

    // Victim: same ingest and checkpoint, then SIGKILL — no goodbye.
    let sock = dir.join("victim.sock");
    let state = dir.join("victim-state");
    let mut daemon = start_daemon(&sock, 4, Some(&state), false);
    loadgen(&sock, ingest); // returns only after the checkpoint response
    daemon.kill().expect("SIGKILL daemon");
    daemon.wait().expect("reap daemon");

    // Restart from the checkpoint at a different shard count.
    let resumed_out = dir.join("resumed.txt");
    let mut daemon = start_daemon(&sock, 7, Some(&state), true);
    loadgen(
        &sock,
        &[
            "--skip-ingest",
            "--nodes",
            "64",
            "--queries",
            resumed_out.to_str().unwrap(),
            "--shutdown",
        ],
    );
    assert!(daemon.wait().expect("daemon exit").success());

    let golden = std::fs::read_to_string(&golden_out).expect("golden transcript");
    let resumed = std::fs::read_to_string(&resumed_out).expect("resumed transcript");
    assert!(!golden.is_empty() && golden.contains("\"ok\":true"));
    assert_eq!(
        golden, resumed,
        "resumed daemon answers differently from the unkilled golden"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_events_are_rejected_not_fatal() {
    let dir = scratch("malformed");
    let sock = dir.join("d.sock");
    let mut daemon = start_daemon(&sock, 2, None, false);

    let stream = UnixStream::connect(&sock).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut expect_line = |what: &str| -> String {
        let mut resp = String::new();
        reader.read_line(&mut resp).expect(what);
        assert!(!resp.is_empty(), "EOF while waiting for {what}");
        resp
    };

    // Garbage gets an error response; the connection stays up.
    writer.write_all(b"this is not json\n").unwrap();
    writer.flush().unwrap();
    let resp = expect_line("garbage error response");
    assert!(resp.contains("\"ok\":false"), "{resp}");

    // A structurally valid event outside the geometry is rejected by the
    // shard (no response — events are fire-and-forget) and counted.
    writer
        .write_all(b"{\"kind\":\"event\",\"node\":1,\"channel\":9999,\"bank\":0,\"row\":0}\n")
        .unwrap();
    // A valid event still lands after all of the above.
    writer
        .write_all(b"{\"kind\":\"event\",\"node\":1,\"channel\":0,\"bank\":0,\"row\":7}\n")
        .unwrap();
    writer
        .write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
        .unwrap();
    writer.flush().unwrap();
    let stats = expect_line("stats response");
    assert!(stats.contains("\"events_ingested\":1"), "{stats}");
    assert!(stats.contains("\"events_rejected\":2"), "{stats}");

    // The daemon still shuts down cleanly afterwards.
    writer
        .write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
        .unwrap();
    writer.flush().unwrap();
    let bye = expect_line("shutdown response");
    assert!(bye.contains("\"op\":\"shutdown\""), "{bye}");
    assert!(daemon.wait().expect("daemon exit").success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_ingest_suite_attributes_every_rejection() {
    let dir = scratch("hostile");
    let sock = dir.join("d.sock");
    let mut cmd = Command::new(daemon_bin());
    cmd.arg("--socket")
        .arg(&sock)
        .arg("--shards")
        .arg("2")
        .arg("--max-line-bytes")
        .arg("4096")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    let mut daemon = cmd.spawn().expect("spawn eccparityd");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {sock:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    let stream = UnixStream::connect(&sock).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut expect_line = |what: &str| -> String {
        let mut resp = String::new();
        reader.read_line(&mut resp).expect(what);
        assert!(!resp.is_empty(), "EOF while waiting for {what}");
        resp
    };

    // Invalid UTF-8: parse reject with an error response.
    writer.write_all(&[0xff, 0xfe, 0x80, b'{', b'\n']).unwrap();
    // Garbage JSON: parse reject with an error response.
    writer.write_all(b"{{{ nope\n").unwrap();
    // Oversized: a 16 KiB line against the 4 KiB cap gets a structured
    // refusal and is discarded without desyncing the stream.
    let mut big = vec![b'x'; 16 * 1024];
    big.push(b'\n');
    writer.write_all(&big).unwrap();
    // Interleaved garbage between valid events: both events must land.
    writer
        .write_all(b"{\"kind\":\"event\",\"node\":1,\"channel\":0,\"bank\":0,\"row\":7}\n")
        .unwrap();
    writer.write_all(b"interleaved garbage!\n").unwrap();
    writer
        .write_all(b"{\"kind\":\"event\",\"node\":2,\"channel\":1,\"bank\":1,\"row\":9}\n")
        .unwrap();
    // Geometry-bad event: shard-level reject, no response line.
    writer
        .write_all(b"{\"kind\":\"event\",\"node\":3,\"channel\":9999,\"bank\":0,\"row\":0}\n")
        .unwrap();
    writer.flush().unwrap();

    for what in [
        "utf8 error response",
        "garbage error response",
        "oversized refusal",
        "interleaved error response",
    ] {
        let resp = expect_line(what);
        assert!(resp.contains("\"ok\":false"), "{what}: {resp}");
        if what == "oversized refusal" {
            assert!(resp.contains("\"code\":\"oversized\""), "{resp}");
        }
    }

    // A truncated final line on a second connection (mid-line disconnect)
    // is processed at EOF and counted as one more parse reject.
    let torn = UnixStream::connect(&sock).expect("connect torn");
    let mut torn_w = torn.try_clone().expect("clone torn");
    torn_w.write_all(b"{\"kind\":\"event\",\"no").unwrap();
    torn_w.flush().unwrap();
    drop(torn_w);
    drop(torn);

    // Poll until the torn connection's reject lands, then assert the
    // full attribution: every hostile line is counted exactly once.
    let poll_deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        writer
            .write_all(b"{\"kind\":\"query\",\"op\":\"stats\"}\n")
            .unwrap();
        writer.flush().unwrap();
        let resp = expect_line("stats response");
        if resp.contains("\"rejected_parse\":4") || Instant::now() >= poll_deadline {
            break resp;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(stats.contains("\"events_ingested\":2"), "{stats}");
    assert!(stats.contains("\"rejected_parse\":4"), "{stats}");
    assert!(stats.contains("\"rejected_oversized\":1"), "{stats}");
    assert!(stats.contains("\"rejected_geometry\":1"), "{stats}");
    assert!(stats.contains("\"events_rejected\":6"), "{stats}");
    assert!(stats.contains("\"degraded_shards\":0"), "{stats}");

    writer
        .write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
        .unwrap();
    writer.flush().unwrap();
    let bye = expect_line("shutdown response");
    assert!(bye.contains("\"op\":\"shutdown\""), "{bye}");
    assert!(daemon.wait().expect("daemon exit").success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_inflight_events_into_final_checkpoint() {
    let dir = scratch("drain");
    let sock = dir.join("d.sock");
    let state = dir.join("state");
    let mut daemon = start_daemon(&sock, 4, Some(&state), false);

    // Connection A: a burst of events with NO barrier query, then EOF —
    // when the shutdown lands these may still be queued or buffered.
    let total = 20_000u64;
    {
        let stream = UnixStream::connect(&sock).expect("connect burst");
        let mut w = stream.try_clone().expect("clone burst");
        let mut buf = Vec::with_capacity(total as usize * 64);
        for i in 0..total {
            buf.extend_from_slice(
                format!(
                    "{{\"kind\":\"event\",\"node\":{},\"channel\":{},\"bank\":{},\"row\":{}}}\n",
                    i % 50,
                    i % 8,
                    i % 16,
                    i % 1024
                )
                .as_bytes(),
            );
        }
        w.write_all(&buf).unwrap();
        w.flush().unwrap();
    } // dropped: EOF

    // Connection B: immediate shutdown. The drained final checkpoint
    // must still contain every event from connection A.
    let stream = UnixStream::connect(&sock).expect("connect ctl");
    let mut w = stream.try_clone().expect("clone ctl");
    let mut r = BufReader::new(stream);
    w.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
        .unwrap();
    w.flush().unwrap();
    let mut resp = String::new();
    r.read_line(&mut resp).expect("shutdown response");
    assert!(resp.contains("\"op\":\"shutdown\""), "{resp}");
    assert!(daemon.wait().expect("daemon exit").success());

    // Resume and count: all 20k events survived the shutdown race.
    let mut daemon = start_daemon(&sock, 4, Some(&state), true);
    let stream = UnixStream::connect(&sock).expect("connect resumed");
    let mut w = stream.try_clone().expect("clone resumed");
    let mut r = BufReader::new(stream);
    w.write_all(b"{\"kind\":\"query\",\"op\":\"fleet\"}\n")
        .unwrap();
    w.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
        .unwrap();
    w.flush().unwrap();
    let mut fleet = String::new();
    r.read_line(&mut fleet).expect("fleet response");
    assert!(
        fleet.contains(&format!("\"events\":{total}")),
        "shutdown lost in-flight events: {fleet}"
    );
    resp.clear();
    r.read_line(&mut resp).expect("shutdown response");
    assert!(daemon.wait().expect("daemon exit").success());
    let _ = std::fs::remove_dir_all(&dir);
}
