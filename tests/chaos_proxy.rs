//! End-to-end network chaos: `eccparity-loadgen` driving `eccparityd`
//! *through* `eccparity-chaosproxy`, as real processes over real Unix
//! sockets — the same topology CI's `chaos-smoke` job runs at scale.
//!
//! The properties under test are the hostile-fleet contract:
//!
//! 1. **Chaos-transparent transcripts.** Torn frames, drip-fed bytes,
//!    and a flood of sacrificial garbage/oversized/geometry-bad lines
//!    (plus the daemon's own injected batch panics via
//!    `ECC_PARITY_SERVICE_CHAOS`) must not change a single byte of the
//!    query transcript relative to a direct, chaos-free daemon — even
//!    at a different shard count.
//! 2. **Exact rejection attribution.** Every hostile line the proxy
//!    injects shows up in exactly one `service.reject.*` bucket: the
//!    chaosproxy summary and the daemon's `stats` must agree to the
//!    line.
//! 3. **Kill-and-resume after chaos.** A SIGKILL'd post-chaos daemon
//!    restarted with `--resume` (different shard count again) still
//!    answers byte-identically to the golden.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eccparity-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn wait_for(path: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !path.exists() {
        assert!(Instant::now() < deadline, "{path:?} never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn start_daemon(
    sock: &Path,
    shards: u32,
    state: Option<&Path>,
    resume: bool,
    chaos: bool,
    io_mode: &str,
) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_eccparityd"));
    cmd.arg("--socket")
        .arg(sock)
        .arg("--shards")
        .arg(shards.to_string())
        .arg("--io-mode")
        .arg(io_mode)
        .arg("--name")
        .arg("chaos-smoke")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(dir) = state {
        cmd.arg("--state-dir").arg(dir);
    }
    if resume {
        cmd.arg("--resume");
    }
    if chaos {
        cmd.env("ECC_PARITY_SERVICE_CHAOS", "9");
    }
    let child = cmd.spawn().expect("spawn eccparityd");
    wait_for(sock);
    child
}

fn loadgen(sock: &Path, args: &[&str]) {
    let out = Command::new(env!("CARGO_BIN_EXE_eccparity-loadgen"))
        .arg("--socket")
        .arg(sock)
        .args(args)
        .output()
        .expect("run eccparity-loadgen");
    assert!(
        out.status.success(),
        "loadgen {:?} failed: {}\n{}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// One direct query against the daemon; returns the response line.
fn query(sock: &Path, line: &str) -> String {
    let stream = UnixStream::connect(sock).expect("connect for query");
    let mut w = stream.try_clone().expect("clone query stream");
    let mut r = BufReader::new(stream);
    w.write_all(line.as_bytes()).unwrap();
    w.write_all(b"\n").unwrap();
    w.flush().unwrap();
    let mut resp = String::new();
    r.read_line(&mut resp).expect("query response");
    assert!(!resp.is_empty(), "EOF instead of a response to {line}");
    resp.trim_end().to_string()
}

fn field(json: &serde_json::Value, name: &str) -> u64 {
    json[name]
        .as_u64()
        .unwrap_or_else(|| panic!("field {name} missing: {json:?}"))
}

/// The full chaos smoke, parameterized over the victim daemon's io
/// mode. The golden daemon is always `threads`, so the `evented` leg
/// additionally proves cross-io-mode transcript equality under chaos.
fn chaos_smoke(io_mode: &str) {
    let dir = scratch(&format!("smoke-{io_mode}"));
    let ingest: &[&str] = &["--events", "30000", "--nodes", "64", "--seed", "33"];

    // Golden: direct socket, no chaos anywhere, 4 shards, threaded io.
    let golden_sock = dir.join("golden.sock");
    let golden_out = dir.join("golden.txt");
    let mut daemon = start_daemon(&golden_sock, 4, None, false, false, "threads");
    let mut args = ingest.to_vec();
    args.extend(["--queries", golden_out.to_str().unwrap(), "--shutdown"]);
    loadgen(&golden_sock, &args);
    assert!(daemon.wait().expect("golden daemon exit").success());

    // Chaos: 3 shards, internal chaos armed, loadgen through the proxy.
    let sock = dir.join("victim.sock");
    let state = dir.join("state");
    let proxy_sock = dir.join("proxy.sock");
    let summary_file = dir.join("summary.json");
    let chaos_out = dir.join("chaos.txt");
    let mut daemon = start_daemon(&sock, 3, Some(&state), false, true, io_mode);
    let mut proxy = Command::new(env!("CARGO_BIN_EXE_eccparity-chaosproxy"))
        .arg("--listen-socket")
        .arg(&proxy_sock)
        .arg("--upstream-socket")
        .arg(&sock)
        .arg("--seed")
        .arg("7")
        .arg("--abuse-lines")
        .arg("12")
        .arg("--torn-disconnects")
        .arg("3")
        .arg("--once")
        .arg("--summary")
        .arg(&summary_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn chaosproxy");
    wait_for(&proxy_sock);
    // Checkpoint after ingest (through the proxy), so the later SIGKILL
    // has a journal to resume from; queries written for the transcript
    // comparison. No --shutdown: the daemon must outlive the proxy.
    let mut args = ingest.to_vec();
    args.extend(["--checkpoint", "--queries", chaos_out.to_str().unwrap()]);
    loadgen(&proxy_sock, &args);
    assert!(
        proxy.wait().expect("proxy exit").success(),
        "chaosproxy failed"
    );

    // 1. Transcript equality, chaos vs golden, across shard counts.
    let golden = std::fs::read_to_string(&golden_out).expect("golden transcript");
    let chaosd = std::fs::read_to_string(&chaos_out).expect("chaos transcript");
    assert!(!golden.is_empty() && golden.contains("\"ok\":true"));
    assert_eq!(golden, chaosd, "network chaos changed the transcript");

    // 2. Exact attribution: proxy summary vs daemon counters.
    let summary: serde_json::Value = serde_json::from_str(
        std::fs::read_to_string(&summary_file)
            .expect("summary")
            .trim(),
    )
    .expect("summary JSON");
    assert_eq!(summary["schema"].as_str(), Some("eccparity-netchaos-v1"));
    let expected_parse = field(&summary, "garbage_lines")
        + field(&summary, "utf8_lines")
        + field(&summary, "torn_disconnects");
    // The torn disconnects surface asynchronously (their connections die
    // with no response to wait on), so poll stats briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let resp = query(&sock, "{\"kind\":\"query\",\"op\":\"stats\"}");
        let v: serde_json::Value = serde_json::from_str(&resp).expect("stats JSON");
        let result = v["result"].clone();
        if field(&result, "rejected_parse") >= expected_parse || Instant::now() >= deadline {
            break result;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(field(&stats, "rejected_parse"), expected_parse, "{stats:?}");
    assert_eq!(
        field(&stats, "rejected_oversized"),
        field(&summary, "oversized_lines"),
        "{stats:?}"
    );
    assert_eq!(
        field(&stats, "rejected_geometry"),
        field(&summary, "geometry_bad_lines"),
        "{stats:?}"
    );
    // Internal chaos really fired, and its retry discipline lost nothing.
    assert!(field(&stats, "batch_panics") > 0, "{stats:?}");
    assert_eq!(field(&stats, "panic_lost_lines"), 0, "{stats:?}");
    assert_eq!(field(&stats, "shed_lines"), 0, "block policy is lossless");
    assert_eq!(field(&stats, "events_ingested"), 30_000, "{stats:?}");

    // 3. SIGKILL, then resume at a different shard count: byte-identical.
    daemon.kill().expect("SIGKILL daemon");
    daemon.wait().expect("reap daemon");
    let resumed_out = dir.join("resumed.txt");
    let mut daemon = start_daemon(&sock, 5, Some(&state), true, false, io_mode);
    loadgen(
        &sock,
        &[
            "--skip-ingest",
            "--nodes",
            "64",
            "--queries",
            resumed_out.to_str().unwrap(),
            "--shutdown",
        ],
    );
    assert!(daemon.wait().expect("resumed daemon exit").success());
    let resumed = std::fs::read_to_string(&resumed_out).expect("resumed transcript");
    assert_eq!(
        golden, resumed,
        "post-chaos resume answers differently from the golden"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaosproxy_run_matches_golden_and_attributes_every_reject_threaded() {
    chaos_smoke("threads");
}

#[test]
fn chaosproxy_run_matches_golden_and_attributes_every_reject_evented() {
    chaos_smoke("evented");
}
