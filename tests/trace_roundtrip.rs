//! Cross-crate test: trace record -> save -> load -> replay equals live.

use ecc_parity_repro::mem_sim::{
    RunConfig, SchemeConfig, SchemeId, SimRunner, SystemScale, Trace, WorkloadSpec,
};

#[test]
fn trace_file_roundtrip_reproduces_simulation() {
    let w = WorkloadSpec::by_name("ferret").unwrap();
    let built = SchemeConfig::build(SchemeId::RaimParity, SystemScale::QuadEquivalent);
    let mut live_cfg = RunConfig::paper(built, w);
    live_cfg.cores = 2;
    live_cfg.warmup_per_core = 1_000;
    live_cfg.accesses_per_core = 2_500;
    let live = SimRunner::new(live_cfg.clone()).run();

    // Record, persist to disk, reload, replay.
    let trace = Trace::record(w, 2, 3_500, live_cfg.seed);
    let dir = std::env::temp_dir().join("eccparity_root_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ferret.jsonl");
    trace.save_jsonl(&path).unwrap();
    let reloaded = Trace::load_jsonl(&path).unwrap();
    assert_eq!(trace, reloaded);

    let mut replay_cfg = live_cfg;
    replay_cfg.trace = Some(reloaded);
    let replay = SimRunner::new(replay_cfg).run();
    assert_eq!(live.cycles, replay.cycles);
    assert_eq!(live.energy, replay.energy);
    assert_eq!(live.traffic, replay.traffic);
}
