//! Cross-io-mode equivalence tests: `--io-mode threads` and
//! `--io-mode evented` must be observationally identical at the protocol
//! level — same responses, same transcripts, same push streams — no
//! matter how the request bytes are framed on the wire.
//!
//! The evented path reassembles lines from arbitrary read-chunk
//! boundaries, so the adversarial framing here is a byte-at-a-time drip:
//! every line of the script crosses a chunk boundary at every position.
//! The threaded leg gets the same script as one bulk write; the response
//! byte streams must match exactly.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn daemon_bin() -> &'static str {
    env!("CARGO_BIN_EXE_eccparityd")
}

fn loadgen_bin() -> &'static str {
    env!("CARGO_BIN_EXE_eccparity-loadgen")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eccparityd-iomode-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn start_daemon(sock: &Path, io_mode: &str, extra: &[&str]) -> Child {
    let mut cmd = Command::new(daemon_bin());
    cmd.arg("--socket")
        .arg(sock)
        .arg("--shards")
        .arg("2")
        .arg("--io-mode")
        .arg(io_mode)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    let child = cmd.spawn().expect("spawn eccparityd");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {sock:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    child
}

/// The request script: events (no response), a parse error (error
/// response), queries (one response each). Deterministic end to end.
const SCRIPT: &[&str] = &[
    "{\"kind\":\"event\",\"node\":1,\"channel\":0,\"bank\":0,\"row\":7}",
    "this line is not json",
    "{\"kind\":\"event\",\"node\":2,\"channel\":1,\"bank\":1,\"row\":9}",
    "{\"kind\":\"query\",\"op\":\"node_risk\",\"node\":1}",
    "{\"kind\":\"query\",\"op\":\"fleet\"}",
    "{\"kind\":\"query\",\"op\":\"shutdown\"}",
];
const SCRIPT_RESPONSES: usize = 4; // error + node_risk + fleet + shutdown

/// Run the script against one daemon; `drip` writes it one byte at a
/// time (flushing each byte) instead of as a single bulk write.
fn run_script(io_mode: &str, drip: bool, tag: &str) -> String {
    let dir = scratch(tag);
    let sock = dir.join("d.sock");
    let mut daemon = start_daemon(&sock, io_mode, &[]);

    let stream = UnixStream::connect(&sock).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut bytes = Vec::new();
    for line in SCRIPT {
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
    }
    if drip {
        for b in &bytes {
            writer.write_all(std::slice::from_ref(b)).unwrap();
            writer.flush().unwrap();
        }
    } else {
        writer.write_all(&bytes).unwrap();
        writer.flush().unwrap();
    }

    let mut responses = String::new();
    for i in 0..SCRIPT_RESPONSES {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "{io_mode}: EOF before response {i}");
        responses.push_str(&line);
    }
    assert!(daemon.wait().expect("daemon exit").success());
    let _ = std::fs::remove_dir_all(&dir);
    responses
}

#[test]
fn byte_dripped_evented_responses_match_threaded_bulk() {
    let threaded = run_script("threads", false, "drip-t");
    let evented = run_script("evented", true, "drip-e");
    assert!(threaded.contains("\"ok\":false"), "{threaded}");
    assert!(threaded.contains("\"op\":\"fleet\""), "{threaded}");
    assert_eq!(
        threaded, evented,
        "byte-dripped evented responses differ from threaded bulk"
    );
    // And the evented path is also insensitive to its own framing.
    let evented_bulk = run_script("evented", false, "bulk-e");
    assert_eq!(evented, evented_bulk);
}

#[test]
fn multiconn_loadgen_transcripts_identical_across_modes() {
    let dir = scratch("transcripts");
    let mut transcripts = Vec::new();
    for mode in ["threads", "evented"] {
        let sock = dir.join(format!("{mode}.sock"));
        let out = dir.join(format!("{mode}.txt"));
        let mut daemon = start_daemon(&sock, mode, &["--max-conns", "64"]);
        let status = Command::new(loadgen_bin())
            .arg("--socket")
            .arg(&sock)
            .args([
                "--events",
                "20000",
                "--nodes",
                "64",
                "--seed",
                "7",
                "--connections",
                "4",
                "--queries",
                out.to_str().unwrap(),
                "--shutdown",
            ])
            .stdout(Stdio::null())
            .status()
            .expect("run loadgen");
        assert!(status.success(), "loadgen failed against {mode}");
        assert!(daemon.wait().expect("daemon exit").success());
        transcripts.push(std::fs::read_to_string(&out).expect("read transcript"));
    }
    assert!(!transcripts[0].is_empty());
    assert_eq!(
        transcripts[0], transcripts[1],
        "query transcripts differ between io modes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subscribe_push_stream_identical_across_modes() {
    let dir = scratch("subscribe");
    let mut pushes = Vec::new();
    for mode in ["threads", "evented"] {
        let sock = dir.join(format!("{mode}.sock"));
        let mut daemon = start_daemon(&sock, mode, &[]);

        // Subscriber first: reading the ack guarantees registration, so
        // the transition below cannot be missed.
        let sub = UnixStream::connect(&sock).expect("connect subscriber");
        let mut sub_w = sub.try_clone().expect("clone subscriber");
        let mut sub_r = BufReader::new(sub);
        sub_w
            .write_all(b"{\"kind\":\"query\",\"op\":\"subscribe\"}\n")
            .unwrap();
        sub_w.flush().unwrap();
        let mut ack = String::new();
        sub_r.read_line(&mut ack).expect("subscribe ack");
        assert!(ack.contains("\"streaming\":true"), "{mode}: {ack}");

        // One threshold-reaching event migrates a pair: Nominal -> Watch.
        let feeder = UnixStream::connect(&sock).expect("connect feeder");
        let mut fw = feeder.try_clone().expect("clone feeder");
        let mut fr = BufReader::new(feeder);
        // The trailing query is the barrier: events are fire-and-forget
        // and ride the connection router's batch buffer, so a lone event
        // would not flush until EOF.
        fw.write_all(
            b"{\"kind\":\"event\",\"node\":9,\"channel\":0,\"bank\":0,\"row\":1,\"count\":4}\n\
              {\"kind\":\"query\",\"op\":\"stats\"}\n",
        )
        .unwrap();
        fw.flush().unwrap();
        let mut stats = String::new();
        fr.read_line(&mut stats).expect("stats barrier");
        assert!(stats.contains("\"push_subscribers\":1"), "{mode}: {stats}");

        let mut push = String::new();
        sub_r.read_line(&mut push).expect("push line");
        assert!(push.contains("\"kind\":\"push\""), "{mode}: {push}");
        assert!(push.contains("\"node\":9"), "{mode}: {push}");
        pushes.push(push);

        fw.write_all(b"{\"kind\":\"query\",\"op\":\"shutdown\"}\n")
            .unwrap();
        fw.flush().unwrap();
        let mut bye = String::new();
        fr.read_line(&mut bye).expect("shutdown response");
        assert!(bye.contains("\"op\":\"shutdown\""), "{mode}: {bye}");
        drop(sub_r);
        drop(sub_w);
        assert!(daemon.wait().expect("daemon exit").success());
    }
    assert_eq!(
        pushes[0], pushes[1],
        "push transition lines differ between io modes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
