//! Server-fleet reliability planning with the Monte Carlo engine: given a
//! fleet of ECC-Parity servers, how should the scrub interval be set, and
//! how much capacity will have migrated to stored ECC bits at end of life?
//!
//! This is the §III-E / §VI-C analysis applied the way an operator would:
//! pick a fleet size and a reliability budget, read off the scrub interval.
//!
//! Run with: `cargo run --release --example server_fleet_reliability`

use ecc_parity_repro::mem_faults::{FitTable, LifetimeSim, SystemGeometry};
use ecc_parity_repro::resilience_analysis::eol::fig8_point;
use ecc_parity_repro::resilience_analysis::scrub::analytic_window_probability;
use ecc_parity_repro::resilience_analysis::years_per_extra_uncorrectable;

fn main() {
    let geo = SystemGeometry::paper_reliability(); // 8 chan x 4 ranks x 9 chips
    let fleet = 10_000usize;
    let fit = 44.0; // vendor-average DDR3 [21]

    println!("fleet: {fleet} servers, geometry 8x4x9, {fit} FIT/chip\n");

    // 1. Scrub-interval planning: extra uncorrectable events in the fleet
    // over 7 years, per candidate interval.
    println!("scrub interval -> P(multi-channel coincidence)/server/7yr -> fleet events");
    for hours in [1.0, 4.0, 8.0, 24.0, 72.0, 168.0] {
        let p = analytic_window_probability(&geo, fit, hours);
        let fleet_events = p * fleet as f64;
        let years = years_per_extra_uncorrectable(p);
        println!(
            "  {hours:>5.0} h   {p:.2e}   {fleet_events:>8.2} events \
             (one per {years:.0} server-years)"
        );
    }

    // 2. Sanity-check the analytic curve against the Monte Carlo engine at
    // an inflated rate where coincidences are resolvable.
    let inflated = 5_000.0;
    let sim = LifetimeSim::new(geo, FitTable::DDR3_AVERAGE.scaled_to(inflated));
    let mc = sim.multi_channel_window_probability(24.0, 3_000, 7);
    let an = analytic_window_probability(&geo, inflated, 24.0);
    println!(
        "\nMC cross-check at {inflated} FIT, 24h window: analytic {an:.3}, \
         Monte Carlo {mc:.3}"
    );

    // 3. End-of-life capacity: how much memory migrates to stored ECC bits.
    let p = fig8_point(8, 20_000, 99);
    println!(
        "\nend-of-life migrated capacity (7 years): mean {:.3}%, 99.9th \
         percentile {:.3}% — budget accordingly (paper: ~0.4% mean).",
        p.mean_fraction * 100.0,
        p.p999_fraction * 100.0
    );
    println!(
        "mean pages retired by small faults: {:.1} (out of ~100,000s per \
         bank pair: negligible)",
        p.mean_retired_pages
    );
}
