//! RAS telemetry walk-through: transient vs permanent faults through the
//! scrubber's eyes, narrated by the event log — the §III-C policy engine
//! (count errors, retire pages, migrate pairs) as an operator would see it
//! in machine-check telemetry.
//!
//! Run with: `cargo run --release --example ras_telemetry`

use ecc_parity_repro::ecc_codes::lotecc::LotEcc;
use ecc_parity_repro::ecc_parity::events::MemEvent;
use ecc_parity_repro::ecc_parity::layout::LineLoc;
use ecc_parity_repro::ecc_parity::memory::{ParityConfig, ParityMemory};
use ecc_parity_repro::mem_faults::{ChipLocation, FaultInstance, FaultMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn print_new_events(mem: &ParityMemory<LotEcc>, since: &mut u64) {
    for (seq, ev) in mem.event_log().events() {
        if *seq < *since {
            continue;
        }
        let line = match ev {
            MemEvent::ErrorDetected {
                channel,
                loc,
                resolved,
            } => format!(
                "error detected   ch{channel} bank{} row{} line{} -> {resolved:?}",
                loc.bank, loc.row, loc.line
            ),
            MemEvent::PageRetired { channel, bank, row } => {
                format!("page retired     ch{channel} bank{bank} row{row}")
            }
            MemEvent::PairMigrated { channel, pair } => format!(
                "PAIR MIGRATED    ch{channel} banks {},{} now use stored ECC lines",
                2 * pair,
                2 * pair + 1
            ),
            MemEvent::Uncorrectable { channel, loc } => format!(
                "UNCORRECTABLE    ch{channel} bank{} row{} line{}",
                loc.bank, loc.row, loc.line
            ),
        };
        println!("  [{seq:>4}] {line}");
    }
    *since = mem.event_log().total_logged();
}

fn main() {
    let cfg = ParityConfig::small(8);
    let mut mem = ParityMemory::new(LotEcc::five(), cfg);
    let mut rng = StdRng::seed_from_u64(2014);
    for channel in 0..cfg.channels {
        for bank in 0..cfg.banks_per_channel {
            for row in 0..cfg.data_rows {
                for line in 0..cfg.lines_per_row {
                    let d: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
                    mem.write(channel, LineLoc { bank, row, line }, &d).unwrap();
                }
            }
        }
    }
    let mut cursor = mem.event_log().total_logged();
    println!(
        "8-channel LOT-ECC5 + ECC Parity memory, {} lines, threshold {}\n",
        cfg.channels as u64 * cfg.lines_per_channel(),
        cfg.threshold
    );

    println!("== event 1: a cosmic-ray strike (transient) in channel 5 ==");
    mem.inject_transient(FaultInstance {
        chip: ChipLocation {
            channel: 5,
            rank: 0,
            chip: 0,
        },
        mode: FaultMode::SingleBit,
        bank: 3,
        row: 2,
        line: 1,
        pattern_seed: 1,
    });
    let rep = mem.scrub();
    println!(
        "scrub: {} error(s) found, {} page(s) retired",
        rep.errors_detected, rep.pages_retired
    );
    print_new_events(&mem, &mut cursor);
    let rep = mem.scrub();
    println!(
        "next scrub: {} errors — the write-back healed the transient for good\n",
        rep.errors_detected
    );

    println!("== event 2: a device develops a permanent bank fault in channel 1 ==");
    mem.inject_fault(FaultInstance {
        chip: ChipLocation {
            channel: 1,
            rank: 0,
            chip: 2,
        },
        mode: FaultMode::SingleBank,
        bank: 0,
        row: 0,
        line: 0,
        pattern_seed: 2,
    });
    let rep = mem.scrub();
    println!(
        "scrub: {} errors, {} pages retired, {} pair(s) migrated",
        rep.errors_detected, rep.pages_retired, rep.pairs_migrated
    );
    print_new_events(&mem, &mut cursor);

    println!("\n== steady state: reads through the dead bank ==");
    let loc = LineLoc {
        bank: 0,
        row: 5,
        line: 0,
    };
    let before = mem.stats().ecc_line_corrections;
    let _ = mem.read(1, loc).unwrap();
    println!(
        "read ch1 {loc:?}: corrected via stored ECC line \
         (step B; {} such corrections so far)",
        mem.stats().ecc_line_corrections
    );
    assert!(mem.stats().ecc_line_corrections > before);

    println!(
        "\ncapacity overhead now {:.2}% (static 16.52% + migrated pair at 2R \
         + retired pages); telemetry: {} events logged, {} dropped by the ring",
        mem.capacity_overhead() * 100.0,
        mem.event_log().total_logged(),
        mem.event_log().dropped()
    );
}
