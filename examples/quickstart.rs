//! Quickstart: protect a multi-channel memory with ECC Parity, survive a
//! whole-chip DRAM failure, and watch the health machinery react.
//!
//! Run with: `cargo run --release --example quickstart`

use ecc_parity_repro::ecc_codes::lotecc::LotEcc;
use ecc_parity_repro::ecc_parity::layout::LineLoc;
use ecc_parity_repro::ecc_parity::memory::{ParityConfig, ParityMemory};
use ecc_parity_repro::mem_faults::{ChipLocation, FaultInstance, FaultMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // An 8-logical-channel memory protected by LOT-ECC5 (four x16 data
    // chips + one x8 checksum chip per rank) with ECC Parity on top:
    // correction bits are NOT stored per channel — only one cross-channel
    // XOR of them.
    let config = ParityConfig {
        channels: 8,
        banks_per_channel: 4,
        data_rows: 14, // 2 blocks of (channels - 1) rows
        lines_per_row: 8,
        threshold: 4,
    };
    let mut memory = ParityMemory::new(LotEcc::five(), config);
    println!(
        "ECC Parity memory: {} channels, {} banks/channel, threshold {}",
        config.channels, config.banks_per_channel, config.threshold
    );
    println!(
        "static capacity overhead: {:.2}% (vs {:.2}% for LOT-ECC5 storing \
         its correction bits per channel)\n",
        memory.capacity_overhead() * 100.0,
        0.40625 * 100.0
    );

    // Fill it with data.
    let mut rng = StdRng::seed_from_u64(42);
    let mut shadow = Vec::new();
    for channel in 0..config.channels {
        for bank in 0..config.banks_per_channel {
            for row in 0..config.data_rows {
                for line in 0..config.lines_per_row {
                    let data: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
                    let loc = LineLoc { bank, row, line };
                    memory.write(channel, loc, &data).unwrap();
                    shadow.push((channel, loc, data));
                }
            }
        }
    }
    println!(
        "wrote {} lines across {} channels",
        shadow.len(),
        config.channels
    );

    // A DRAM device dies: chip 2 of channel 3 develops a bank fault.
    memory.inject_fault(FaultInstance {
        chip: ChipLocation {
            channel: 3,
            rank: 0,
            chip: 2,
        },
        mode: FaultMode::SingleBank,
        bank: 1,
        row: 0,
        line: 0,
        pattern_seed: 0xDEAD,
    });
    println!("\ninjected: whole-bank fault in channel 3, bank 1, chip 2");

    // Demand reads still return correct data: detection bits catch the
    // error and the correction bits are rebuilt from the ECC parity plus
    // the other channels (Fig 6, step C).
    let (_, probe_loc, probe_data) = shadow
        .iter()
        .find(|(c, l, _)| *c == 3 && l.bank == 1)
        .unwrap()
        .clone();
    let got = memory.read(3, probe_loc).unwrap();
    assert_eq!(got, probe_data);
    println!(
        "demand read through the fault: corrected via parity \
         reconstruction ({} member-line reads)",
        memory.stats().reconstruction_reads
    );

    // The scrubber finds the fault, retires pages, and after the error
    // counter saturates migrates the bank pair to stored ECC lines.
    let report = memory.scrub();
    println!(
        "\nscrub sweep: {} errors detected, {} pages retired, {} pair(s) \
         migrated to stored ECC correction bits",
        report.errors_detected, report.pages_retired, report.pairs_migrated
    );
    assert!(memory.health().is_faulty(3, 1));

    // Every line is still readable (retired pages excluded by the OS).
    let mut verified = 0;
    for (channel, loc, data) in &shadow {
        if memory.health().is_retired(*channel, loc.bank, loc.row) {
            continue;
        }
        assert_eq!(&memory.read(*channel, *loc).unwrap(), data);
        verified += 1;
    }
    println!("verified {verified} surviving lines are intact");
    println!(
        "\nend-of-life capacity overhead: {:.2}% (stored ECC lines for the \
         migrated pair add 2R on its share of memory)",
        memory.capacity_overhead() * 100.0
    );
    let s = memory.stats();
    println!(
        "stats: {} reads, {} writes, {} parity updates, {} ECC-line \
         corrections, {} uncorrectable",
        s.reads, s.writes, s.parity_updates, s.ecc_line_corrections, s.uncorrectable
    );
}
