//! Design-space exploration: sweep channel counts and underlying codes to
//! see where ECC Parity pays off — the paper's core trade-off (capacity
//! overhead falls as R/(N-1)) made tangible, plus a live energy comparison
//! of two organizations on a memory-intensive workload.
//!
//! Run with: `cargo run --release --example design_space`

use ecc_parity_repro::ecc_codes::OverheadModel;
use ecc_parity_repro::mem_sim::{
    RunConfig, SchemeConfig, SchemeId, SimRunner, SystemScale, WorkloadSpec,
};

fn main() {
    // 1. Capacity overhead vs channel count for the two underlying codes.
    println!("capacity overhead of ECC Parity vs channels sharing parities");
    println!("channels | LOT-ECC5 (R=0.25) | RAIM-style (R=0.5)");
    for n in [2usize, 3, 4, 6, 8, 10, 12, 16] {
        let lot = OverheadModel::ecc_parity(0.25, n).total();
        let raim = OverheadModel::ecc_parity(0.5, n).total();
        println!(
            "  {n:>3}    |      {:>5.1}%       |      {:>5.1}%",
            lot * 100.0,
            raim * 100.0
        );
    }
    println!(
        "\nreference points: LOT-ECC5 alone costs 40.6%; commercial chipkill \
         12.5%. ECC Parity reaches 16.5% at 8 channels (paper Table III)."
    );

    // 2. Energy: what the capacity savings buy when traded for the
    // energy-efficient five-chip rank.
    println!("\nsimulating milc (memory-intensive) on quad-equivalent systems...");
    let w = WorkloadSpec::by_name("milc").unwrap();
    let mut results = vec![];
    for id in [SchemeId::Ck36, SchemeId::Ck18, SchemeId::Lot5Parity] {
        let mut cfg = RunConfig::paper(SchemeConfig::build(id, SystemScale::QuadEquivalent), w);
        cfg.warmup_per_core = 20_000;
        cfg.accesses_per_core = 40_000;
        let r = SimRunner::new(cfg).run();
        results.push(r);
    }
    println!(
        "\n{:<32} {:>10} {:>10} {:>10}",
        "scheme", "EPI (pJ)", "dyn (pJ)", "bg (pJ)"
    );
    for r in &results {
        println!(
            "{:<32} {:>10.1} {:>10.1} {:>10.1}",
            r.scheme_name,
            r.epi_pj(),
            r.dynamic_epi_pj(),
            r.background_epi_pj()
        );
    }
    let base = results[0].epi_pj();
    let ours = results[2].epi_pj();
    println!(
        "\nLOT-ECC5 + ECC Parity vs 36-device commercial chipkill: \
         {:.1}% lower memory energy per instruction, at {:.1}% vs 12.5% \
         capacity overhead.",
        (1.0 - ours / base) * 100.0,
        OverheadModel::ecc_parity(0.25, 8).total() * 100.0
    );
}
