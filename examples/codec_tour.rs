//! A tour of the functional ECC codecs: encode a line under each scheme,
//! kill a chip, and watch detection + correction do their jobs — including
//! the detection/correction **split** that ECC Parity exploits.
//!
//! Run with: `cargo run --release --example codec_tour`

use ecc_parity_repro::ecc_codes::traits::{inject_chip_error, DetectOutcome, MemoryEcc};
use ecc_parity_repro::ecc_codes::{Chipkill18, Chipkill36, LotEcc, Raim};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn demo(ecc: &dyn MemoryEcc, kill_chip: usize, rng: &mut StdRng) {
    let data: Vec<u8> = (0..ecc.data_bytes()).map(|_| rng.gen()).collect();
    let cw = ecc.encode(&data);
    println!("\n## {}", ecc.name());
    println!(
        "   {} chips/rank | {}B data + {}B detection + {}B correction \
         (R = {:.3}, total overhead {:.1}%)",
        ecc.chips_per_rank(),
        ecc.data_bytes(),
        ecc.detection_bytes(),
        ecc.correction_bytes(),
        ecc.correction_ratio(),
        ecc.baseline_overhead() * 100.0
    );

    // Whole-chip random failure.
    let mut noisy = cw.clone();
    inject_chip_error(ecc, &mut noisy, kill_chip, |b| *b = rng.gen());
    let detected = ecc.detect(&noisy.data, &noisy.detection);
    println!(
        "   chip {kill_chip} scrambled -> on-the-fly detection: {:?}",
        detected
    );
    let mut repaired = noisy.data.clone();
    match ecc.correct(
        &mut repaired,
        &noisy.detection,
        &cw.correction,
        Some(kill_chip),
    ) {
        Ok(out) => {
            assert_eq!(repaired, data);
            println!(
                "   corrected: {} bytes repaired, data verified bit-exact",
                out.repaired_bytes
            );
        }
        Err(e) => println!("   correction failed: {e}"),
    }

    // A second simultaneous chip failure exceeds chipkill's guarantee.
    if detected == DetectOutcome::ErrorDetected {
        let other = (kill_chip + 1) % ecc.chips_per_rank();
        inject_chip_error(ecc, &mut noisy, other, |b| *b ^= 0x77);
        let mut twice = noisy.data.clone();
        let res = ecc.correct(&mut twice, &noisy.detection, &cw.correction, None);
        println!(
            "   two simultaneous chip failures: {}",
            match res {
                Err(_) => "detected uncorrectable (as designed)".to_string(),
                Ok(_) =>
                    if twice == data {
                        "corrected (erasure capacity to spare)".to_string()
                    } else {
                        "MISCORRECTED — must not happen".to_string()
                    },
            }
        );
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2014); // the paper's vintage
    println!("every code implemented bit-for-bit; all corrections verified.");
    demo(&Chipkill36::new(), 17, &mut rng);
    demo(&Chipkill18::new(), 5, &mut rng);
    demo(&LotEcc::five(), 2, &mut rng);
    demo(&LotEcc::nine(), 6, &mut rng);
    demo(&Raim::new(), 20, &mut rng);
    println!(
        "\nECC Parity stores only the XOR of each scheme's correction bits \
         across channels — run the quickstart example to see it in action."
    );
}
