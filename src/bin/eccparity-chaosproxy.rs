//! `eccparity-chaosproxy` — deterministic network chaos between a client
//! (usually `eccparity-loadgen`) and a running `eccparityd`.
//!
//! Two phases, both pure functions of `--seed` (see
//! [`resilience::netchaos`] for the design):
//!
//! 1. **Abuse** (unless `--no-abuse`): dedicated sacrificial connections
//!    flood the daemon with malformed JSON, invalid UTF-8,
//!    out-of-geometry events, oversized lines, and mid-line disconnects.
//!    None of it mutates fleet state; all of it must land in the
//!    daemon's `service.reject.*` counters.
//! 2. **Relay**: the proxy listens, and forwards each accepted client
//!    connection to the daemon byte-for-byte — but torn into
//!    deterministic partial writes with occasional 1–3 ms drip pauses.
//!    A correct newline-delimited daemon produces byte-identical query
//!    transcripts through this relay, which is what CI's `chaos-smoke`
//!    job `cmp`s.
//!
//! ```text
//! eccparity-chaosproxy (--listen-socket PATH | --listen-tcp HOST:PORT)
//!                      (--upstream-socket PATH | --upstream-tcp HOST:PORT)
//!                      [--seed N] [--abuse-lines N] [--oversized-bytes N]
//!                      [--max-split N] [--drip-every N]
//!                      [--torn-disconnects N] [--no-abuse]
//!                      [--once] [--summary FILE]
//! ```
//!
//! `--once` serves exactly one relay connection and exits (the CI mode);
//! otherwise the proxy accepts until killed. `--summary FILE` writes one
//! `eccparity-netchaos-v1` JSON line totalling everything injected, so
//! the caller can assert the daemon attributed every hostile byte.
//!
//! Exit status: 0 success, 1 proxy/daemon I/O failure, 2 usage error.

use resilience::netchaos::{
    merge, run_abuse, run_relay, ChaosConfig, ChaosStream, ChaosSummary, Endpoint,
};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::mpsc;

fn usage() -> ! {
    eprintln!(
        "usage: eccparity-chaosproxy (--listen-socket PATH | --listen-tcp HOST:PORT)\n\
         \x20                           (--upstream-socket PATH | --upstream-tcp HOST:PORT)\n\
         \x20                           [--seed N] [--abuse-lines N] [--oversized-bytes N]\n\
         \x20                           [--max-split N] [--drip-every N]\n\
         \x20                           [--torn-disconnects N] [--no-abuse]\n\
         \x20                           [--once] [--summary FILE]"
    );
    std::process::exit(2);
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    match value.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("eccparity-chaosproxy: {flag} needs an unsigned integer argument");
            usage();
        }
    }
}

enum Acceptor {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Acceptor {
    fn accept(&self) -> std::io::Result<ChaosStream> {
        match self {
            Acceptor::Unix(l, _) => l.accept().map(|(s, _)| ChaosStream::Unix(s)),
            Acceptor::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                ChaosStream::Tcp(s)
            }),
        }
    }
}

fn main() {
    let mut listen: Option<Endpoint> = None;
    let mut upstream: Option<Endpoint> = None;
    let mut cfg = ChaosConfig::default();
    let mut no_abuse = false;
    let mut once = false;
    let mut summary_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen-socket" => {
                let Some(p) = args.next() else { usage() };
                listen = Some(Endpoint::Unix(PathBuf::from(p)));
            }
            "--listen-tcp" => {
                let Some(a) = args.next() else { usage() };
                listen = Some(Endpoint::Tcp(a));
            }
            "--upstream-socket" => {
                let Some(p) = args.next() else { usage() };
                upstream = Some(Endpoint::Unix(PathBuf::from(p)));
            }
            "--upstream-tcp" => {
                let Some(a) = args.next() else { usage() };
                upstream = Some(Endpoint::Tcp(a));
            }
            "--seed" => cfg.seed = parse_u64("--seed", args.next()),
            "--abuse-lines" => cfg.abuse_lines = parse_u64("--abuse-lines", args.next()),
            "--oversized-bytes" => {
                cfg.oversized_bytes = parse_u64("--oversized-bytes", args.next()).max(2) as usize
            }
            "--max-split" => cfg.max_split = parse_u64("--max-split", args.next()).max(1) as usize,
            "--drip-every" => cfg.drip_every = parse_u64("--drip-every", args.next()),
            "--torn-disconnects" => {
                cfg.torn_disconnects = parse_u64("--torn-disconnects", args.next())
            }
            "--no-abuse" => no_abuse = true,
            "--once" => once = true,
            "--summary" => {
                let Some(f) = args.next() else { usage() };
                summary_out = Some(PathBuf::from(f));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("eccparity-chaosproxy: unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(listen) = listen else {
        eprintln!("eccparity-chaosproxy: need --listen-socket or --listen-tcp");
        usage();
    };
    let Some(upstream) = upstream else {
        eprintln!("eccparity-chaosproxy: need --upstream-socket or --upstream-tcp");
        usage();
    };
    if no_abuse {
        cfg.abuse_lines = 0;
        cfg.torn_disconnects = 0;
    }

    // Bind before the abuse phase so clients can connect while the
    // daemon is absorbing garbage; their relayed bytes queue in the
    // listener backlog.
    let acceptor = match &listen {
        Endpoint::Unix(path) => {
            let _ = std::fs::remove_file(path);
            match UnixListener::bind(path) {
                Ok(l) => Acceptor::Unix(l, path.clone()),
                Err(e) => {
                    eprintln!("eccparity-chaosproxy: cannot bind {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        Endpoint::Tcp(addr) => match TcpListener::bind(addr) {
            Ok(l) => {
                if let Ok(a) = l.local_addr() {
                    eprintln!("eccparity-chaosproxy: listening on tcp://{a}");
                }
                Acceptor::Tcp(l)
            }
            Err(e) => {
                eprintln!("eccparity-chaosproxy: cannot bind {addr}: {e}");
                std::process::exit(1);
            }
        },
    };

    let mut total = match run_abuse(&upstream, &cfg) {
        Ok(s) => {
            eprintln!(
                "eccparity-chaosproxy: abuse injected {} garbage / {} utf8 / {} geometry / \
                 {} oversized lines, {} torn disconnects ({} responses drained)",
                s.garbage_lines,
                s.utf8_lines,
                s.geometry_bad_lines,
                s.oversized_lines,
                s.torn_disconnects,
                s.abuse_responses
            );
            s
        }
        Err(e) => {
            eprintln!("eccparity-chaosproxy: abuse phase failed: {e}");
            std::process::exit(1);
        }
    };

    // Relay phase. In --once mode one connection is served inline; in
    // daemon mode each connection gets a thread and counters merge
    // through a channel.
    let (tx, rx) = mpsc::channel::<ChaosSummary>();
    let mut stream_id = 0u64;
    loop {
        let client = match acceptor.accept() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("eccparity-chaosproxy: accept failed: {e}");
                break;
            }
        };
        stream_id += 1;
        if once {
            match run_relay(client, &upstream, &cfg, stream_id) {
                Ok(s) => total = merge(total, s),
                Err(e) => {
                    eprintln!("eccparity-chaosproxy: relay failed: {e}");
                    std::process::exit(1);
                }
            }
            break;
        }
        let upstream = upstream.clone();
        let tx = tx.clone();
        let cfg_copy = cfg;
        std::thread::spawn(
            move || match run_relay(client, &upstream, &cfg_copy, stream_id) {
                Ok(s) => {
                    let _ = tx.send(s);
                }
                Err(e) => eprintln!("eccparity-chaosproxy: relay failed: {e}"),
            },
        );
    }
    drop(tx);
    while let Ok(s) = rx.try_recv() {
        total = merge(total, s);
    }

    if let Acceptor::Unix(_, path) = &acceptor {
        let _ = std::fs::remove_file(path);
    }
    eprintln!(
        "eccparity-chaosproxy: relayed {} bytes in / {} bytes out over {} splits ({} drips)",
        total.relay_bytes_in, total.relay_bytes_out, total.relay_splits, total.relay_drips
    );
    let json = total.to_json();
    println!("{json}");
    if let Some(out) = summary_out {
        if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
            eprintln!("eccparity-chaosproxy: cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
