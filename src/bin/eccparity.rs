//! `eccparity` — command-line front end to the reproduction.
//!
//! ```text
//! eccparity codes                               list the implemented ECCs
//! eccparity overhead --r 0.25 --channels 8      ECC Parity capacity math
//! eccparity reliability --fit 44 --window 8     scrub-interval exposure
//! eccparity mtbf --fit 44                       between-channel fault gap
//! eccparity simulate --scheme lot5p --workload milc [--scale dual|quad]
//! ```

use ecc_parity_repro::ecc_codes::{
    Chipkill18, Chipkill36, ChipkillDouble, LotEcc, MemoryEcc, OverheadModel, Raim,
};
use ecc_parity_repro::mem_faults::SystemGeometry;
use ecc_parity_repro::mem_sim::{
    RunConfig, SchemeConfig, SchemeId, SimRunner, SystemScale, WorkloadSpec,
};
use ecc_parity_repro::resilience_analysis::scrub::analytic_window_probability;
use ecc_parity_repro::resilience_analysis::{
    analytic_mtbf_hours, scrub_bandwidth_fraction, years_per_extra_uncorrectable,
};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn flag_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> f64 {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cmd_codes() {
    let ck36 = Chipkill36::new();
    let ck18 = Chipkill18::new();
    let ckd = ChipkillDouble::new();
    let lot5 = LotEcc::five();
    let lot9 = LotEcc::nine();
    let raim = Raim::new();
    let codes: Vec<&dyn MemoryEcc> = vec![&ck36, &ck18, &ckd, &lot5, &lot9, &raim];
    println!(
        "{:<42} {:>6} {:>6} {:>8} {:>8}",
        "code", "chips", "line", "R", "overhead"
    );
    for c in codes {
        println!(
            "{:<42} {:>6} {:>5}B {:>8.3} {:>7.1}%",
            c.name(),
            c.chips_per_rank(),
            c.data_bytes(),
            c.correction_ratio(),
            c.baseline_overhead() * 100.0
        );
    }
}

fn cmd_overhead(flags: &HashMap<String, String>) {
    let r = flag_f64(flags, "r", 0.25);
    let channels = flag_f64(flags, "channels", 8.0) as usize;
    let b = OverheadModel::ecc_parity(r, channels);
    println!(
        "ECC Parity over {channels} channels, R = {r}:\n\
         detection {:.2}% + parity {:.2}% = {:.2}% of data capacity",
        b.detection * 100.0,
        b.correction * 100.0,
        b.total() * 100.0
    );
    for frac in [0.002, 0.004, 0.01] {
        let eol = OverheadModel::ecc_parity_eol(r, channels, frac);
        println!(
            "  with {:.1}% of memory migrated to stored ECC bits: {:.2}%",
            frac * 100.0,
            eol.total() * 100.0
        );
    }
}

fn cmd_reliability(flags: &HashMap<String, String>) {
    let fit = flag_f64(flags, "fit", 44.0);
    let window = flag_f64(flags, "window", 8.0);
    let geo = SystemGeometry::paper_reliability();
    let p = analytic_window_probability(&geo, fit, window);
    println!(
        "8-channel system at {fit} FIT/chip, scrub window {window} h:\n\
         P(multi-channel coincidence over 7 years) = {p:.2e}\n\
         one extra uncorrectable per {:.0} years\n\
         scrub bandwidth (512GB @ 128GB/s peak): {:.4}%",
        years_per_extra_uncorrectable(p),
        scrub_bandwidth_fraction(512e9, window, 128e9) * 100.0
    );
}

fn cmd_mtbf(flags: &HashMap<String, String>) {
    let fit = flag_f64(flags, "fit", 44.0);
    let geo = SystemGeometry::paper_reliability();
    let h = analytic_mtbf_hours(&geo, fit);
    println!(
        "mean time between faults in different channels (8x4x9 @ {fit} FIT): \
         {:.0} hours = {:.0} days",
        h,
        h / 24.0
    );
}

fn cmd_simulate(flags: &HashMap<String, String>) -> ExitCode {
    let scheme = match flags.get("scheme").map(String::as_str) {
        Some("ck36") => SchemeId::Ck36,
        Some("ck18") => SchemeId::Ck18,
        Some("lot5") => SchemeId::Lot5,
        Some("lot9") => SchemeId::Lot9,
        Some("multi") => SchemeId::MultiEcc,
        Some("lot5p") | None => SchemeId::Lot5Parity,
        Some("raim") => SchemeId::Raim,
        Some("raimp") => SchemeId::RaimParity,
        Some(other) => {
            eprintln!("unknown scheme '{other}' (ck36|ck18|lot5|lot9|multi|lot5p|raim|raimp)");
            return ExitCode::FAILURE;
        }
    };
    let scale = match flags.get("scale").map(String::as_str) {
        Some("dual") => SystemScale::DualEquivalent,
        _ => SystemScale::QuadEquivalent,
    };
    let wname = flags.get("workload").map(String::as_str).unwrap_or("milc");
    let workload = match WorkloadSpec::lookup(wname) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = RunConfig::paper(SchemeConfig::build(scheme, scale), workload);
    let r = SimRunner::new(cfg).run();
    println!("scheme    : {}", r.scheme_name);
    println!(
        "workload  : {} ({} instructions)",
        r.workload_name, r.instructions
    );
    println!("runtime   : {} cycles ({} ns)", r.cycles, r.cycles);
    println!(
        "EPI       : {:.1} pJ ({:.1} dynamic + {:.1} background)",
        r.epi_pj(),
        r.dynamic_epi_pj(),
        r.background_epi_pj()
    );
    println!(
        "traffic   : {:.4} 64B-units/instr ({} data R, {} data W, {} ECC R, {} ECC W)",
        r.units_per_instruction(),
        r.traffic.data_read_units,
        r.traffic.data_write_units,
        r.traffic.ecc_read_units,
        r.traffic.ecc_write_units
    );
    println!(
        "bandwidth : {:.2} GB/s, avg latency {:.1} ns",
        r.bandwidth_gbs(),
        r.avg_mem_latency
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(args.get(1..).unwrap_or(&[]));
    match args.first().map(String::as_str) {
        Some("codes") => cmd_codes(),
        Some("overhead") => cmd_overhead(&flags),
        Some("reliability") => cmd_reliability(&flags),
        Some("mtbf") => cmd_mtbf(&flags),
        Some("simulate") => return cmd_simulate(&flags),
        _ => {
            eprintln!(
                "usage: eccparity <codes|overhead|reliability|mtbf|simulate> [--flags]\n\
                 see the module docs (src/bin/eccparity.rs) for examples"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
