//! `eccparity-loadgen` — deterministic load generator and smoke client
//! for `eccparityd`.
//!
//! Derives a fleet-wide corrected-error / fault event stream from the
//! soak harness's [`resilience::loadgen`] machinery (a pure function of
//! `--seed`), pre-renders it to `eccparity-rpc-v1` lines, and replays it
//! into a running daemon as fast as the socket accepts — then reports the
//! measured ingest rate (a `stats` query doubles as the end-of-stream
//! barrier, so the clock covers parse + apply, not just the write).
//!
//! ```text
//! eccparity-loadgen (--socket PATH | --tcp HOST:PORT)
//!                   [--events N] [--nodes N] [--seed N]
//!                   [--channels N] [--banks N]
//!                   [--connections N] [--idle-conns N]
//!                   [--latency-probes N]
//!                   [--bench-json FILE] [--bench-label LABEL]
//!                   [--skip-ingest] [--min-rate EVENTS_PER_SEC]
//!                   [--checkpoint] [--queries FILE] [--shutdown]
//! ```
//!
//! Steps run in a fixed order: idle connections are parked (they soak
//! the daemon's connection table for the whole run), then ingest (unless
//! `--skip-ingest`), then `--latency-probes` timed queries, then
//! `--checkpoint`, then `--queries` (a deterministic query suite whose
//! responses are written verbatim, one per line, to FILE — two daemons
//! holding the same state produce byte-identical files, which is exactly
//! what the kill-and-restart smoke `cmp`s), then `--shutdown`.
//!
//! With `--connections N > 1` the ingest stream is split by
//! `node % N` across N sockets multiplexed over the same readiness
//! poller the daemon's evented mode uses — per-node event order is
//! preserved (a node's events all ride one connection), so query
//! transcripts stay byte-identical to a single-connection run. The
//! end-of-stream barrier becomes a stats poll (the per-connection
//! router flush happens at each socket's EOF).
//!
//! `--bench-json FILE` merges this run's measurements into FILE under
//! `--bench-label` (schema `eccparity-bench-daemon-io-v1`) so one file
//! can compare `--io-mode threads` and `evented` runs side by side.
//!
//! Exit status: 0 success, 1 daemon I/O or gate failure, 2 usage
//! error, 4 ingest rate below `--min-rate`. The rate gate gets its own
//! code because it is the one failure that can be a noisy-neighbor
//! artifact rather than a bug — CI retries exactly that exit once on a
//! fresh daemon before declaring the throughput gate failed.

use resilience::loadgen::{FleetStream, StreamConfig};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: eccparity-loadgen (--socket PATH | --tcp HOST:PORT)\n\
         \x20                        [--events N] [--nodes N] [--seed N]\n\
         \x20                        [--channels N] [--banks N]\n\
         \x20                        [--connections N] [--idle-conns N]\n\
         \x20                        [--latency-probes N]\n\
         \x20                        [--bench-json FILE] [--bench-label LABEL]\n\
         \x20                        [--skip-ingest] [--min-rate N]\n\
         \x20                        [--checkpoint] [--queries FILE] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    match value.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("eccparity-loadgen: {flag} needs an unsigned integer argument");
            usage();
        }
    }
}

enum Target {
    Unix(PathBuf),
    Tcp(String),
}

/// A raw ingest/soak socket of either flavor.
enum Sock {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Sock {
    fn raw_fd(&self) -> RawFd {
        match self {
            Sock::Unix(s) => s.as_raw_fd(),
            Sock::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Sock::Unix(s) => s.set_nonblocking(nb),
            Sock::Tcp(s) => s.set_nonblocking(nb),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Unix(s) => s.write(buf),
            Sock::Tcp(s) => s.write(buf),
        }
    }
}

/// Borrowed raw fd for poller registration.
struct Fd(RawFd);

impl AsRawFd for Fd {
    fn as_raw_fd(&self) -> RawFd {
        self.0
    }
}

/// One connection attempt (no retry loop — callers decide).
fn raw_connect(target: &Target) -> std::io::Result<Sock> {
    match target {
        Target::Unix(path) => UnixStream::connect(path).map(Sock::Unix),
        Target::Tcp(addr) => TcpStream::connect(addr).map(|s| {
            let _ = s.set_nodelay(true);
            Sock::Tcp(s)
        }),
    }
}

/// Connect with a retry window (accept backlogs overflow when thousands
/// of sockets open in a burst).
fn connect_sock(target: &Target) -> Sock {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match raw_connect(target) {
            Ok(s) => return s,
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("eccparity-loadgen: cannot connect: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Connect, retrying for a few seconds so scripts can start the daemon
/// and the loadgen concurrently.
fn connect(target: &Target) -> (Box<dyn Read>, Box<dyn Write>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let pair: std::io::Result<(Box<dyn Read>, Box<dyn Write>)> = match target {
            Target::Unix(path) => UnixStream::connect(path).and_then(|s| {
                let w = s.try_clone()?;
                Ok((Box::new(s) as Box<dyn Read>, Box::new(w) as Box<dyn Write>))
            }),
            Target::Tcp(addr) => TcpStream::connect(addr).and_then(|s| {
                s.set_nodelay(true)?;
                let w = s.try_clone()?;
                Ok((Box::new(s) as Box<dyn Read>, Box::new(w) as Box<dyn Write>))
            }),
        };
        match pair {
            Ok(p) => return p,
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("eccparity-loadgen: cannot connect to daemon: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Send one query line and read its one response line.
fn query(writer: &mut dyn Write, reader: &mut impl BufRead, line: &str) -> String {
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .unwrap_or_else(|e| {
            eprintln!("eccparity-loadgen: write failed: {e}");
            std::process::exit(1);
        });
    let mut resp = String::new();
    match reader.read_line(&mut resp) {
        Ok(n) if n > 0 => resp.trim_end().to_string(),
        _ => {
            eprintln!("eccparity-loadgen: daemon closed the connection mid-query");
            std::process::exit(1);
        }
    }
}

/// Pull one unsigned field out of a `stats` response's `result` object.
fn stats_u64(resp: &str, key: &str) -> Option<u64> {
    let v: serde_json::Value = serde_json::from_str(resp).ok()?;
    v.get("result")?.get(key)?.as_u64()
}

/// Write the ingest stream over `n` sockets multiplexed on the
/// readiness poller; each socket carries the nodes with
/// `node % n == its index`, so per-node order is preserved. Sockets are
/// closed as their buffer drains (EOF flushes the daemon-side router).
fn multiplexed_ingest(target: &Target, bufs: Vec<Vec<u8>>) {
    use mio::{Events, Interest, Poll, Token};
    let poll = Poll::new().unwrap_or_else(|e| {
        eprintln!("eccparity-loadgen: poller init failed: {e}");
        std::process::exit(1);
    });
    let mut conns: Vec<Option<(Sock, Vec<u8>, usize)>> = Vec::with_capacity(bufs.len());
    let mut remaining = 0usize;
    for (i, buf) in bufs.into_iter().enumerate() {
        if buf.is_empty() {
            conns.push(None);
            continue;
        }
        let sock = connect_sock(target);
        sock.set_nonblocking(true).unwrap_or_else(|e| {
            eprintln!("eccparity-loadgen: set_nonblocking failed: {e}");
            std::process::exit(1);
        });
        poll.register(&Fd(sock.raw_fd()), Token(i), Interest::WRITABLE)
            .unwrap_or_else(|e| {
                eprintln!("eccparity-loadgen: register failed: {e}");
                std::process::exit(1);
            });
        conns.push(Some((sock, buf, 0)));
        remaining += 1;
    }
    while remaining > 0 {
        let mut events = Events::with_capacity(64);
        if poll.poll(&mut events, Some(Duration::from_secs(10))).is_err() {
            continue;
        }
        for ev in events.iter() {
            let idx = ev.token().0;
            let Some((sock, buf, written)) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            loop {
                match sock.write(&buf[*written..]) {
                    Ok(0) => {
                        eprintln!("eccparity-loadgen: ingest socket {idx} closed mid-write");
                        std::process::exit(1);
                    }
                    Ok(n) => {
                        *written += n;
                        if *written == buf.len() {
                            let _ = poll.deregister(&Fd(sock.raw_fd()));
                            conns[idx] = None; // drop = close = daemon-side EOF flush
                            remaining -= 1;
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        eprintln!("eccparity-loadgen: ingest write failed on socket {idx}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }
}

/// Merge this run's measurements into `path` under `label`
/// (schema `eccparity-bench-daemon-io-v1`).
fn write_bench_json(path: &std::path::Path, label: &str, fields: &[(&str, u64)]) {
    use serde_json::Value;
    let mut root = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<Value>(&s).ok())
        .filter(|v| {
            v.get("schema").and_then(|s| s.as_str()) == Some("eccparity-bench-daemon-io-v1")
        })
        .unwrap_or_else(|| {
            Value::Object(vec![
                (
                    "schema".to_string(),
                    Value::Str("eccparity-bench-daemon-io-v1".to_string()),
                ),
                ("modes".to_string(), Value::Object(Vec::new())),
            ])
        });
    let mode = Value::Object(
        fields
            .iter()
            .map(|&(k, v)| (k.to_string(), Value::UInt(v)))
            .collect(),
    );
    if let Value::Object(pairs) = &mut root {
        let modes = pairs.iter_mut().find(|(k, _)| k == "modes");
        match modes {
            Some((_, Value::Object(modes))) => {
                if let Some(slot) = modes.iter_mut().find(|(k, _)| k == label) {
                    slot.1 = mode;
                } else {
                    modes.push((label.to_string(), mode));
                }
            }
            _ => pairs.push((
                "modes".to_string(),
                Value::Object(vec![(label.to_string(), mode)]),
            )),
        }
    }
    let text = serde_json::to_string_pretty(&root).expect("render bench json");
    std::fs::write(path, text + "\n").unwrap_or_else(|e| {
        eprintln!("eccparity-loadgen: cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    println!("loadgen: bench results for `{label}` merged into {}", path.display());
}

fn main() {
    let mut target: Option<Target> = None;
    let mut cfg = StreamConfig {
        nodes: 256,
        events: 1_000_000,
        ..StreamConfig::default()
    };
    let mut skip_ingest = false;
    let mut min_rate: u64 = 0;
    let mut do_checkpoint = false;
    let mut queries_out: Option<PathBuf> = None;
    let mut do_shutdown = false;
    let mut connections: u64 = 1;
    let mut idle_conns: u64 = 0;
    let mut latency_probes: u64 = 0;
    let mut bench_json: Option<PathBuf> = None;
    let mut bench_label = String::from("default");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                let Some(p) = args.next() else { usage() };
                target = Some(Target::Unix(PathBuf::from(p)));
            }
            "--tcp" => {
                let Some(a) = args.next() else { usage() };
                target = Some(Target::Tcp(a));
            }
            "--events" => cfg.events = parse_u64("--events", args.next()),
            "--nodes" => cfg.nodes = parse_u64("--nodes", args.next()).max(1),
            "--seed" => cfg.seed = parse_u64("--seed", args.next()),
            "--channels" => cfg.channels = parse_u64("--channels", args.next()).max(1) as u32,
            "--banks" => cfg.banks = parse_u64("--banks", args.next()).max(2) as u32,
            "--connections" => connections = parse_u64("--connections", args.next()).max(1),
            "--idle-conns" => idle_conns = parse_u64("--idle-conns", args.next()),
            "--latency-probes" => latency_probes = parse_u64("--latency-probes", args.next()),
            "--bench-json" => {
                let Some(f) = args.next() else { usage() };
                bench_json = Some(PathBuf::from(f));
            }
            "--bench-label" => {
                let Some(l) = args.next() else { usage() };
                bench_label = l;
            }
            "--skip-ingest" => skip_ingest = true,
            "--min-rate" => min_rate = parse_u64("--min-rate", args.next()),
            "--checkpoint" => do_checkpoint = true,
            "--queries" => {
                let Some(f) = args.next() else { usage() };
                queries_out = Some(PathBuf::from(f));
            }
            "--shutdown" => do_shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("eccparity-loadgen: unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(target) = target else {
        eprintln!("eccparity-loadgen: need --socket or --tcp");
        usage();
    };

    // Idle connections are parked first and held across ingest and the
    // latency probes — they exist precisely to measure how the daemon
    // behaves while its connection table is full of silent sockets.
    let idle: Vec<Sock> = (0..idle_conns).map(|_| connect_sock(&target)).collect();
    if idle_conns > 0 {
        println!("loadgen: parked {idle_conns} idle connections");
    }

    let (reader, mut writer) = connect(&target);
    let mut reader = BufReader::new(reader);

    let mut measured_rate: u64 = 0;
    let mut ingested: u64 = 0;

    if !skip_ingest && cfg.events > 0 {
        ingested = cfg.events;
        if connections <= 1 {
            // Pre-render the whole stream so the timed window measures
            // the daemon, not the generator.
            let mut buf = Vec::with_capacity(cfg.events as usize * 64);
            for ev in FleetStream::new(cfg) {
                let line = eccparity_service::rpc::render_event(&eccparity_service::rpc::Event {
                    node: ev.node,
                    channel: ev.channel,
                    bank: ev.bank,
                    row: ev.row,
                    count: 1,
                    bank_fault: ev.bank_fault,
                });
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
            let t0 = Instant::now();
            writer.write_all(&buf).unwrap_or_else(|e| {
                eprintln!("eccparity-loadgen: ingest write failed: {e}");
                std::process::exit(1);
            });
            // The stats response only arrives after a shard barrier, so
            // this clock covers routing + parse + apply of every event
            // above.
            let stats = query(
                &mut writer,
                &mut reader,
                "{\"kind\":\"query\",\"op\":\"stats\"}",
            );
            let wall = t0.elapsed();
            let secs = wall.as_secs_f64().max(1e-9);
            measured_rate = (cfg.events as f64 / secs) as u64;
            println!(
                "loadgen: ingested {} events in {:.1} ms ({} events/s)",
                cfg.events,
                wall.as_secs_f64() * 1e3,
                measured_rate
            );
            println!("loadgen: stats {stats}");
        } else {
            // Multi-connection ingest: the per-connection read-your-writes
            // barrier does not cover the other sockets, so the
            // end-of-stream barrier becomes a stats poll against the
            // fleet-wide ingest counter.
            let baseline = stats_u64(
                &query(
                    &mut writer,
                    &mut reader,
                    "{\"kind\":\"query\",\"op\":\"stats\"}",
                ),
                "events_ingested",
            )
            .unwrap_or_else(|| {
                eprintln!("eccparity-loadgen: stats response lacks events_ingested");
                std::process::exit(1);
            });
            let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); connections as usize];
            for ev in FleetStream::new(cfg) {
                let line = eccparity_service::rpc::render_event(&eccparity_service::rpc::Event {
                    node: ev.node,
                    channel: ev.channel,
                    bank: ev.bank,
                    row: ev.row,
                    count: 1,
                    bank_fault: ev.bank_fault,
                });
                let buf = &mut bufs[(ev.node % connections) as usize];
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
            }
            let t0 = Instant::now();
            multiplexed_ingest(&target, bufs);
            let want = baseline + cfg.events;
            let deadline = Instant::now() + Duration::from_secs(120);
            loop {
                let resp = query(
                    &mut writer,
                    &mut reader,
                    "{\"kind\":\"query\",\"op\":\"stats\"}",
                );
                match stats_u64(&resp, "events_ingested") {
                    Some(n) if n >= want => break,
                    _ if Instant::now() >= deadline => {
                        eprintln!(
                            "eccparity-loadgen: ingest barrier timed out \
                             (want {want} events_ingested)"
                        );
                        std::process::exit(1);
                    }
                    _ => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            let wall = t0.elapsed();
            let secs = wall.as_secs_f64().max(1e-9);
            measured_rate = (cfg.events as f64 / secs) as u64;
            println!(
                "loadgen: ingested {} events over {} connections in {:.1} ms ({} events/s)",
                cfg.events,
                connections,
                wall.as_secs_f64() * 1e3,
                measured_rate
            );
        }
        if min_rate > 0 && measured_rate < min_rate {
            eprintln!(
                "eccparity-loadgen: ingest rate {measured_rate} events/s below required {min_rate}"
            );
            std::process::exit(4);
        }
    }

    let (mut p50_us, mut p99_us) = (0u64, 0u64);
    if latency_probes > 0 {
        let mut samples = Vec::with_capacity(latency_probes as usize);
        for i in 0..latency_probes {
            let line = format!(
                "{{\"kind\":\"query\",\"op\":\"node_risk\",\"node\":{}}}",
                i % cfg.nodes
            );
            let t = Instant::now();
            let _ = query(&mut writer, &mut reader, &line);
            samples.push(t.elapsed().as_micros() as u64);
        }
        samples.sort_unstable();
        p50_us = samples[samples.len() / 2];
        p99_us = samples[(samples.len() * 99 / 100).min(samples.len() - 1)];
        println!(
            "loadgen: {} latency probes, p50 {} us, p99 {} us ({} idle conns parked)",
            latency_probes, p50_us, p99_us, idle_conns
        );
    }

    if let Some(path) = &bench_json {
        let stats = query(
            &mut writer,
            &mut reader,
            "{\"kind\":\"query\",\"op\":\"stats\"}",
        );
        write_bench_json(
            path,
            &bench_label,
            &[
                ("events", ingested),
                ("events_per_sec", measured_rate),
                ("connections", connections),
                ("idle_conns", idle_conns),
                ("p50_us", p50_us),
                ("p99_us", p99_us),
                ("os_threads", stats_u64(&stats, "os_threads").unwrap_or(0)),
                ("rss_kb", stats_u64(&stats, "rss_kb").unwrap_or(0)),
            ],
        );
    }
    drop(idle);

    if do_checkpoint {
        let resp = query(
            &mut writer,
            &mut reader,
            "{\"kind\":\"query\",\"op\":\"checkpoint\"}",
        );
        println!("loadgen: checkpoint {resp}");
        if !resp.contains("\"ok\":true") {
            eprintln!("eccparity-loadgen: checkpoint failed");
            std::process::exit(1);
        }
    }

    if let Some(out) = queries_out {
        // A deterministic suite over state-only queries (no stats — its
        // process-local counters differ between a fresh daemon and a
        // resumed one even when the fleet state is identical).
        let probes = [cfg.nodes / 2, cfg.nodes.saturating_sub(1), cfg.nodes + 7];
        let mut lines = vec![
            "{\"kind\":\"query\",\"op\":\"ping\"}".to_string(),
            "{\"kind\":\"query\",\"op\":\"fleet\"}".to_string(),
            "{\"kind\":\"query\",\"op\":\"top_pages\",\"k\":50}".to_string(),
            "{\"kind\":\"query\",\"op\":\"node_risk\",\"node\":0}".to_string(),
            "{\"kind\":\"query\",\"op\":\"recommend\",\"node\":0}".to_string(),
        ];
        for n in probes {
            lines.push(format!(
                "{{\"kind\":\"query\",\"op\":\"node_risk\",\"node\":{n}}}"
            ));
            lines.push(format!(
                "{{\"kind\":\"query\",\"op\":\"recommend\",\"node\":{n}}}"
            ));
        }
        let mut text = String::new();
        for line in &lines {
            text.push_str(&query(&mut writer, &mut reader, line));
            text.push('\n');
        }
        std::fs::write(&out, &text).unwrap_or_else(|e| {
            eprintln!("eccparity-loadgen: cannot write {}: {e}", out.display());
            std::process::exit(1);
        });
        println!(
            "loadgen: wrote {} query responses to {}",
            lines.len(),
            out.display()
        );
    }

    if do_shutdown {
        let resp = query(
            &mut writer,
            &mut reader,
            "{\"kind\":\"query\",\"op\":\"shutdown\"}",
        );
        println!("loadgen: shutdown {resp}");
    }
}
