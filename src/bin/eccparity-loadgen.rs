//! `eccparity-loadgen` — deterministic load generator and smoke client
//! for `eccparityd`.
//!
//! Derives a fleet-wide corrected-error / fault event stream from the
//! soak harness's [`resilience::loadgen`] machinery (a pure function of
//! `--seed`), pre-renders it to `eccparity-rpc-v1` lines, and replays it
//! into a running daemon as fast as the socket accepts — then reports the
//! measured ingest rate (a `stats` query doubles as the end-of-stream
//! barrier, so the clock covers parse + apply, not just the write).
//!
//! ```text
//! eccparity-loadgen (--socket PATH | --tcp HOST:PORT)
//!                   [--events N] [--nodes N] [--seed N]
//!                   [--channels N] [--banks N]
//!                   [--skip-ingest] [--min-rate EVENTS_PER_SEC]
//!                   [--checkpoint] [--queries FILE] [--shutdown]
//! ```
//!
//! Steps run in a fixed order: ingest (unless `--skip-ingest`), then
//! `--checkpoint`, then `--queries` (a deterministic query suite whose
//! responses are written verbatim, one per line, to FILE — two daemons
//! holding the same state produce byte-identical files, which is exactly
//! what the kill-and-restart smoke `cmp`s), then `--shutdown`.
//!
//! Exit status: 0 success, 1 daemon I/O or gate failure, 2 usage
//! error, 4 ingest rate below `--min-rate`. The rate gate gets its own
//! code because it is the one failure that can be a noisy-neighbor
//! artifact rather than a bug — CI retries exactly that exit once on a
//! fresh daemon before declaring the throughput gate failed.

use resilience::loadgen::{FleetStream, StreamConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: eccparity-loadgen (--socket PATH | --tcp HOST:PORT)\n\
         \x20                        [--events N] [--nodes N] [--seed N]\n\
         \x20                        [--channels N] [--banks N]\n\
         \x20                        [--skip-ingest] [--min-rate N]\n\
         \x20                        [--checkpoint] [--queries FILE] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    match value.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("eccparity-loadgen: {flag} needs an unsigned integer argument");
            usage();
        }
    }
}

enum Target {
    Unix(PathBuf),
    Tcp(String),
}

/// Connect, retrying for a few seconds so scripts can start the daemon
/// and the loadgen concurrently.
fn connect(target: &Target) -> (Box<dyn Read>, Box<dyn Write>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let pair: std::io::Result<(Box<dyn Read>, Box<dyn Write>)> = match target {
            Target::Unix(path) => UnixStream::connect(path).and_then(|s| {
                let w = s.try_clone()?;
                Ok((Box::new(s) as Box<dyn Read>, Box::new(w) as Box<dyn Write>))
            }),
            Target::Tcp(addr) => TcpStream::connect(addr).and_then(|s| {
                s.set_nodelay(true)?;
                let w = s.try_clone()?;
                Ok((Box::new(s) as Box<dyn Read>, Box::new(w) as Box<dyn Write>))
            }),
        };
        match pair {
            Ok(p) => return p,
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("eccparity-loadgen: cannot connect to daemon: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Send one query line and read its one response line.
fn query(writer: &mut dyn Write, reader: &mut impl BufRead, line: &str) -> String {
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .unwrap_or_else(|e| {
            eprintln!("eccparity-loadgen: write failed: {e}");
            std::process::exit(1);
        });
    let mut resp = String::new();
    match reader.read_line(&mut resp) {
        Ok(n) if n > 0 => resp.trim_end().to_string(),
        _ => {
            eprintln!("eccparity-loadgen: daemon closed the connection mid-query");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut target: Option<Target> = None;
    let mut cfg = StreamConfig {
        nodes: 256,
        events: 1_000_000,
        ..StreamConfig::default()
    };
    let mut skip_ingest = false;
    let mut min_rate: u64 = 0;
    let mut do_checkpoint = false;
    let mut queries_out: Option<PathBuf> = None;
    let mut do_shutdown = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                let Some(p) = args.next() else { usage() };
                target = Some(Target::Unix(PathBuf::from(p)));
            }
            "--tcp" => {
                let Some(a) = args.next() else { usage() };
                target = Some(Target::Tcp(a));
            }
            "--events" => cfg.events = parse_u64("--events", args.next()),
            "--nodes" => cfg.nodes = parse_u64("--nodes", args.next()).max(1),
            "--seed" => cfg.seed = parse_u64("--seed", args.next()),
            "--channels" => cfg.channels = parse_u64("--channels", args.next()).max(1) as u32,
            "--banks" => cfg.banks = parse_u64("--banks", args.next()).max(2) as u32,
            "--skip-ingest" => skip_ingest = true,
            "--min-rate" => min_rate = parse_u64("--min-rate", args.next()),
            "--checkpoint" => do_checkpoint = true,
            "--queries" => {
                let Some(f) = args.next() else { usage() };
                queries_out = Some(PathBuf::from(f));
            }
            "--shutdown" => do_shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("eccparity-loadgen: unknown flag `{other}`");
                usage();
            }
        }
    }
    let Some(target) = target else {
        eprintln!("eccparity-loadgen: need --socket or --tcp");
        usage();
    };

    let (reader, mut writer) = connect(&target);
    let mut reader = BufReader::new(reader);

    if !skip_ingest && cfg.events > 0 {
        // Pre-render the whole stream so the timed window measures the
        // daemon, not the generator.
        let mut buf = Vec::with_capacity(cfg.events as usize * 64);
        for ev in FleetStream::new(cfg) {
            let line = eccparity_service::rpc::render_event(&eccparity_service::rpc::Event {
                node: ev.node,
                channel: ev.channel,
                bank: ev.bank,
                row: ev.row,
                count: 1,
                bank_fault: ev.bank_fault,
            });
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
        }
        let t0 = Instant::now();
        writer.write_all(&buf).unwrap_or_else(|e| {
            eprintln!("eccparity-loadgen: ingest write failed: {e}");
            std::process::exit(1);
        });
        // The stats response only arrives after a shard barrier, so this
        // clock covers routing + parse + apply of every event above.
        let stats = query(
            &mut writer,
            &mut reader,
            "{\"kind\":\"query\",\"op\":\"stats\"}",
        );
        let wall = t0.elapsed();
        let secs = wall.as_secs_f64().max(1e-9);
        let rate = (cfg.events as f64 / secs) as u64;
        println!(
            "loadgen: ingested {} events in {:.1} ms ({} events/s)",
            cfg.events,
            wall.as_secs_f64() * 1e3,
            rate
        );
        println!("loadgen: stats {stats}");
        if min_rate > 0 && rate < min_rate {
            eprintln!("eccparity-loadgen: ingest rate {rate} events/s below required {min_rate}");
            std::process::exit(4);
        }
    }

    if do_checkpoint {
        let resp = query(
            &mut writer,
            &mut reader,
            "{\"kind\":\"query\",\"op\":\"checkpoint\"}",
        );
        println!("loadgen: checkpoint {resp}");
        if !resp.contains("\"ok\":true") {
            eprintln!("eccparity-loadgen: checkpoint failed");
            std::process::exit(1);
        }
    }

    if let Some(out) = queries_out {
        // A deterministic suite over state-only queries (no stats — its
        // process-local counters differ between a fresh daemon and a
        // resumed one even when the fleet state is identical).
        let probes = [cfg.nodes / 2, cfg.nodes.saturating_sub(1), cfg.nodes + 7];
        let mut lines = vec![
            "{\"kind\":\"query\",\"op\":\"ping\"}".to_string(),
            "{\"kind\":\"query\",\"op\":\"fleet\"}".to_string(),
            "{\"kind\":\"query\",\"op\":\"top_pages\",\"k\":50}".to_string(),
            "{\"kind\":\"query\",\"op\":\"node_risk\",\"node\":0}".to_string(),
            "{\"kind\":\"query\",\"op\":\"recommend\",\"node\":0}".to_string(),
        ];
        for n in probes {
            lines.push(format!(
                "{{\"kind\":\"query\",\"op\":\"node_risk\",\"node\":{n}}}"
            ));
            lines.push(format!(
                "{{\"kind\":\"query\",\"op\":\"recommend\",\"node\":{n}}}"
            ));
        }
        let mut text = String::new();
        for line in &lines {
            text.push_str(&query(&mut writer, &mut reader, line));
            text.push('\n');
        }
        std::fs::write(&out, &text).unwrap_or_else(|e| {
            eprintln!("eccparity-loadgen: cannot write {}: {e}", out.display());
            std::process::exit(1);
        });
        println!(
            "loadgen: wrote {} query responses to {}",
            lines.len(),
            out.display()
        );
    }

    if do_shutdown {
        let resp = query(
            &mut writer,
            &mut reader,
            "{\"kind\":\"query\",\"op\":\"shutdown\"}",
        );
        println!("loadgen: shutdown {resp}");
    }
}
