//! `soak` — the end-to-end resilience soak driver.
//!
//! Replays deterministic fault histories and adversarial chaos scenarios
//! against a live `ParityMemory` for every selected ECC scheme, classifies
//! each read against a golden shadow copy, and fails the process if any
//! scheme reports silent corruption, a scenario panic, a health-table
//! monotonicity violation, or a post-scrub parity audit failure.
//!
//! ```text
//! soak [--seed N] [--accesses N] [--schemes a,b,...] [--scenarios x,y,...]
//! ```
//!
//! With `ECC_PARITY_JSON_DIR` set, emits `soak.json` (schema
//! `eccparity-soak-v1`, one summary object per scheme) and
//! `soak_ledger.jsonl` (one JSON object per retained non-clean read).
//!
//! Each scheme soaks as one supervised shard (checkpointed to
//! `results/checkpoints/soak.journal.jsonl`): a SIGKILL mid-soak plus
//! `ECC_PARITY_RESUME=1` re-runs only the schemes that had not finished.
//! Exit status: 0 clean, 1 dirty verdicts, 2 usage error, 3 supervised
//! shard failure (panic/timeout after retries).

use eccparity_bench::supervisor::{supervise, Shard, SupervisorConfig};
use resilience::{ScenarioKind, SoakConfig, SoakHarness, SoakReport};

fn usage() -> ! {
    eprintln!(
        "usage: soak [--seed N] [--accesses N] [--schemes a,b,...] [--scenarios x,y,...]\n\
         \n\
         schemes default: {}\n\
         scenarios default: {}",
        resilience::DEFAULT_SCHEMES.join(","),
        ScenarioKind::all()
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    std::process::exit(2);
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    match value.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("soak: {flag} needs an unsigned integer argument");
            usage();
        }
    }
}

fn parse_args() -> SoakConfig {
    let mut cfg = SoakConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => cfg.seed = parse_u64("--seed", args.next()),
            "--accesses" => cfg.accesses = parse_u64("--accesses", args.next()),
            "--schemes" => {
                let Some(list) = args.next() else { usage() };
                cfg.schemes = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--scenarios" => {
                let Some(list) = args.next() else { usage() };
                cfg.scenarios = list
                    .split(',')
                    .map(|s| {
                        ScenarioKind::by_name(s.trim()).unwrap_or_else(|| {
                            eprintln!("soak: unknown scenario `{s}`");
                            usage();
                        })
                    })
                    .collect();
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("soak: unknown flag `{other}`");
                usage();
            }
        }
    }
    if cfg.schemes.is_empty() || cfg.scenarios.is_empty() {
        eprintln!("soak: need at least one scheme and one scenario");
        usage();
    }
    cfg
}

fn summary_json(cfg: &SoakConfig, reports: &[SoakReport]) -> serde_json::Value {
    let schemes: Vec<serde_json::Value> = reports
        .iter()
        .map(|r| {
            let verdicts = serde_json::json!({
                "clean_read": r.counts.clean_reads,
                "corrected_via_parity": r.counts.corrected_via_parity,
                "corrected_degraded": r.counts.corrected_degraded,
                "detected_uncorrectable": r.counts.detected_uncorrectable,
                "detection_aliased": r.counts.detection_aliased,
                "silent_corruption": r.counts.silent_corruption,
            });
            let scenarios_run: Vec<serde_json::Value> = r
                .scenarios_run
                .iter()
                .map(|(name, n)| serde_json::json!({"scenario": name.clone(), "invocations": *n}))
                .collect();
            serde_json::json!({
                "scheme": r.scheme.clone(),
                "accesses": r.accesses,
                "clean": r.is_clean(),
                "verdicts": verdicts,
                "retired_page_reads": r.counts.retired_page_reads,
                "retired_page_writes": r.counts.retired_page_writes,
                "uncorrectable_writes": r.counts.uncorrectable_writes,
                "writes": r.counts.writes,
                "panics": r.panics,
                "monotonicity_violations": r.monotonicity_violations,
                "audit_failures": r.audit_failures,
                "scenarios_run": scenarios_run,
            })
        })
        .collect();
    let scenario_names: Vec<serde_json::Value> = cfg
        .scenarios
        .iter()
        .map(|s| serde_json::Value::from(s.name()))
        .collect();
    serde_json::json!({
        "schema": "eccparity-soak-v1",
        "seed": cfg.seed,
        "accesses_per_scheme": cfg.accesses,
        "scenarios": scenario_names,
        "schemes": schemes,
    })
}

fn dump_json(cfg: &SoakConfig, reports: &[SoakReport]) {
    let Some(dir) = eccparity_bench::json_dir() else {
        return;
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eccparity_bench::warn_io("soak JSON dir create", &e);
        return;
    }
    let summary = summary_json(cfg, reports);
    match serde_json::to_string_pretty(&summary) {
        Ok(text) => {
            if let Err(e) = std::fs::write(dir.join("soak.json"), text) {
                eccparity_bench::warn_io("soak.json write", &e);
            }
        }
        Err(e) => eccparity_bench::warn_io("soak.json serialize", &e),
    }
    let mut ledger = String::new();
    for r in reports {
        for rec in &r.ledger {
            let line = serde_json::json!({
                "scheme": r.scheme.clone(),
                "scenario": rec.scenario.clone(),
                "access": rec.access,
                "channel": rec.channel,
                "bank": rec.bank,
                "row": rec.row,
                "line": rec.line,
                "verdict": rec.verdict,
            });
            match serde_json::to_string(&line) {
                Ok(text) => {
                    ledger.push_str(&text);
                    ledger.push('\n');
                }
                Err(e) => eccparity_bench::warn_io("soak ledger line serialize", &e),
            }
        }
    }
    if let Err(e) = std::fs::write(dir.join("soak_ledger.jsonl"), ledger) {
        eccparity_bench::warn_io("soak_ledger.jsonl write", &e);
    }
}

fn main() {
    let _run = eccparity_bench::RunMeter::start("soak");
    let cfg = parse_args();
    println!(
        "soak: seed {} | {} accesses/scheme | {} scenarios | {} schemes",
        cfg.seed,
        cfg.accesses,
        cfg.scenarios.len(),
        cfg.schemes.len()
    );
    // Unknown scheme names are a usage error (exit 2) — catch them before
    // any shard runs, so the supervisor only ever sees executable work.
    for scheme in &cfg.schemes {
        if let Err(e) = resilience::scheme_by_name(scheme) {
            eprintln!("soak: {e}");
            std::process::exit(2);
        }
    }
    // One supervised shard per scheme: each soak is deterministic given the
    // config, so a killed run resumes with finished schemes replayed from
    // the checkpoint journal and only unfinished ones re-executed.
    let sup_cfg = SupervisorConfig::from_env("soak", cfg.identity_key());
    let shards: Vec<Shard<SoakReport>> = cfg
        .schemes
        .iter()
        .map(|scheme| {
            let cfg = cfg.clone();
            let scheme = scheme.clone();
            Shard::new(format!("scheme:{scheme}"), move || {
                SoakHarness::new(cfg.clone())
                    .run_scheme(&scheme)
                    .expect("scheme names are validated before sharding")
            })
        })
        .collect();
    let supervised = supervise(&sup_cfg, shards);
    supervised.exit_if_incomplete();
    let reports = supervised.into_results();
    for report in &reports {
        println!(
            "  {:<16} {:>9} accesses | clean {:>8} | parity {:>6} | degraded {:>6} | uncorrectable {:>5} | aliased {} | sdc {} | panics {} | mono {} | audit {} -> {}",
            report.scheme,
            report.accesses,
            report.counts.clean_reads,
            report.counts.corrected_via_parity,
            report.counts.corrected_degraded,
            report.counts.detected_uncorrectable,
            report.counts.detection_aliased,
            report.counts.silent_corruption,
            report.panics,
            report.monotonicity_violations,
            report.audit_failures,
            if report.is_clean() { "CLEAN" } else { "DIRTY" },
        );
    }
    dump_json(&cfg, &reports);
    let dirty: Vec<String> = reports
        .iter()
        .filter(|r| !r.is_clean())
        .map(|r| r.scheme.clone())
        .collect();
    if dirty.is_empty() {
        println!(
            "soak: CLEAN — zero silent corruption across {} schemes",
            reports.len()
        );
    } else {
        eprintln!("soak: DIRTY schemes: {}", dirty.join(", "));
        // Flush provenance/metrics before the non-zero exit: a failing soak
        // is exactly when the observability artifacts matter.
        drop(_run);
        std::process::exit(1);
    }
}
