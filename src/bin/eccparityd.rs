//! `eccparityd` — the long-lived fleet reliability daemon.
//!
//! Ingests newline-delimited JSON fault / corrected-error telemetry
//! (`eccparity-rpc-v1`) over a Unix-domain socket or TCP, shards per-node
//! [`ecc_parity::health::HealthTable`] state across worker threads, and
//! answers fleet-health queries: per-node UE risk, fleet SDC posture,
//! HARP-style top-K at-risk pages, and per-region scheme recommendations.
//!
//! ```text
//! eccparityd [--socket PATH | --tcp HOST:PORT]
//!            [--shards N] [--state-dir DIR] [--resume] [--name NAME]
//!            [--channels N] [--banks N] [--threshold N]
//!            [--max-conns N] [--idle-timeout-ms MS] [--max-line-bytes N]
//!            [--checkpoint-interval-ms MS] [--queue-depth N]
//!            [--overload-policy block|shed] [--watchdog-ms MS]
//!            [--io-mode threads|evented] [--io-shards N] [--push-queue N]
//! ```
//!
//! Defaults: `--socket eccparityd.sock` in the working directory, shard
//! count from `ECC_PARITY_SERVICE_SHARDS` (else 4), state dir from
//! `ECC_PARITY_SERVICE_DIR` (else none — checkpoints disabled). The
//! hostile-fleet knobs also read the environment:
//! `ECC_PARITY_SERVICE_MAX_CONNS`, `ECC_PARITY_SERVICE_IDLE_TIMEOUT_MS`,
//! `ECC_PARITY_SERVICE_MAX_LINE`, `ECC_PARITY_SERVICE_CHECKPOINT_MS`,
//! `ECC_PARITY_SERVICE_QUEUE_DEPTH`, `ECC_PARITY_SERVICE_OVERLOAD`
//! (`block` | `shed`), `ECC_PARITY_SERVICE_WATCHDOG_MS`,
//! `ECC_PARITY_SERVICE_IO_MODE` (`threads` | `evented`),
//! `ECC_PARITY_SERVICE_IO_SHARDS`, and `ECC_PARITY_SERVICE_PUSH_QUEUE`;
//! flags win over environment. `ECC_PARITY_SERVICE_CHAOS=<seed>` arms deterministic
//! fault injection against the daemon's own shard workers (CI only).
//!
//! With a state dir, a `checkpoint` query (and clean shutdown) publishes
//! the whole fleet state as an `eccparity-journal-v1` journal,
//! tmp+fsync+rename; `--resume` replays it on start, so a SIGKILL'd
//! daemon restarts to exactly its last checkpoint. With
//! `--checkpoint-interval-ms` the daemon self-checkpoints on that cadence
//! without operator involvement. See `docs/OPERATIONS.md` for the
//! run-book and `docs/KNOBS.md` for every knob.
//!
//! Exit status: 0 clean shutdown, 2 usage error, 3 listener failure.

use eccparity_service::chaos;
use eccparity_service::engine::{Engine, EngineConfig};
use eccparity_service::queue::OverloadPolicy;
use eccparity_service::server::{serve, IoMode, Listen, ServerConfig};
use eccparity_service::state::Geometry;
use std::path::PathBuf;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: eccparityd [--socket PATH | --tcp HOST:PORT] [--shards N]\n\
         \x20                 [--state-dir DIR] [--resume] [--name NAME]\n\
         \x20                 [--channels N] [--banks N] [--threshold N]\n\
         \x20                 [--max-conns N] [--idle-timeout-ms MS]\n\
         \x20                 [--max-line-bytes N] [--checkpoint-interval-ms MS]\n\
         \x20                 [--queue-depth N] [--overload-policy block|shed]\n\
         \x20                 [--watchdog-ms MS] [--io-mode threads|evented]\n\
         \x20                 [--io-shards N] [--push-queue N]\n\
         \n\
         env: ECC_PARITY_SERVICE_SHARDS (default shard count)\n\
         \x20    ECC_PARITY_SERVICE_DIR    (default state dir)\n\
         \x20    plus the hostile-fleet knobs listed in docs/KNOBS.md"
    );
    std::process::exit(2);
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    match value.as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("eccparityd: {flag} needs an unsigned integer argument");
            usage();
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("eccparityd: ignoring non-integer {name}={raw}");
            None
        }
    }
}

fn parse_overload(raw: &str) -> Option<OverloadPolicy> {
    match raw {
        "block" => Some(OverloadPolicy::Block),
        "shed" => Some(OverloadPolicy::Shed),
        _ => None,
    }
}

fn main() {
    let mut listen: Option<Listen> = None;
    let mut cfg = EngineConfig {
        shards: env_u64("ECC_PARITY_SERVICE_SHARDS").unwrap_or(4).max(1) as usize,
        state_dir: std::env::var("ECC_PARITY_SERVICE_DIR")
            .ok()
            .filter(|s| !s.is_empty())
            .map(PathBuf::from),
        chaos: chaos::global(),
        ..EngineConfig::default()
    };
    if let Some(n) = env_u64("ECC_PARITY_SERVICE_QUEUE_DEPTH") {
        cfg.queue_depth = n.max(1) as usize;
    }
    if let Some(n) = env_u64("ECC_PARITY_SERVICE_WATCHDOG_MS") {
        cfg.watchdog_ms = n;
    }
    if let Some(n) = env_u64("ECC_PARITY_SERVICE_CHECKPOINT_MS") {
        cfg.checkpoint_interval_ms = n;
    }
    if let Ok(raw) = std::env::var("ECC_PARITY_SERVICE_OVERLOAD") {
        match parse_overload(raw.trim()) {
            Some(p) => cfg.overload = p,
            None => eprintln!(
                "eccparityd: ignoring ECC_PARITY_SERVICE_OVERLOAD={raw} (want block|shed)"
            ),
        }
    }
    let mut srv = ServerConfig::default();
    if let Some(n) = env_u64("ECC_PARITY_SERVICE_MAX_CONNS") {
        srv.max_conns = n.max(1) as usize;
    }
    if let Some(n) = env_u64("ECC_PARITY_SERVICE_IDLE_TIMEOUT_MS") {
        srv.idle_timeout_ms = n;
    }
    if let Some(n) = env_u64("ECC_PARITY_SERVICE_MAX_LINE") {
        srv.max_line_bytes = n.max(1024) as usize;
    }
    if let Ok(raw) = std::env::var("ECC_PARITY_SERVICE_IO_MODE") {
        match IoMode::parse(raw.trim()) {
            Some(m) => srv.io_mode = m,
            None => eprintln!(
                "eccparityd: ignoring ECC_PARITY_SERVICE_IO_MODE={raw} (want threads|evented)"
            ),
        }
    }
    if let Some(n) = env_u64("ECC_PARITY_SERVICE_IO_SHARDS") {
        srv.io_shards = n.max(1) as usize;
    }
    if let Some(n) = env_u64("ECC_PARITY_SERVICE_PUSH_QUEUE") {
        cfg.push_queue = n.max(1) as usize;
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                let Some(p) = args.next() else { usage() };
                listen = Some(Listen::Unix(PathBuf::from(p)));
            }
            "--tcp" => {
                let Some(a) = args.next() else { usage() };
                listen = Some(Listen::Tcp(a));
            }
            "--shards" => cfg.shards = parse_u64("--shards", args.next()).max(1) as usize,
            "--state-dir" => {
                let Some(d) = args.next() else { usage() };
                cfg.state_dir = Some(PathBuf::from(d));
            }
            "--resume" => cfg.resume = true,
            "--name" => {
                let Some(n) = args.next() else { usage() };
                cfg.name = n;
            }
            "--channels" => cfg.geom.channels = parse_u64("--channels", args.next()).max(1) as u32,
            "--banks" => cfg.geom.banks = parse_u64("--banks", args.next()).max(2) as u32,
            "--threshold" => {
                cfg.geom.threshold = parse_u64("--threshold", args.next()).clamp(1, 255) as u8
            }
            "--max-conns" => srv.max_conns = parse_u64("--max-conns", args.next()).max(1) as usize,
            "--idle-timeout-ms" => {
                srv.idle_timeout_ms = parse_u64("--idle-timeout-ms", args.next())
            }
            "--max-line-bytes" => {
                srv.max_line_bytes = parse_u64("--max-line-bytes", args.next()).max(1024) as usize
            }
            "--checkpoint-interval-ms" => {
                cfg.checkpoint_interval_ms = parse_u64("--checkpoint-interval-ms", args.next())
            }
            "--queue-depth" => {
                cfg.queue_depth = parse_u64("--queue-depth", args.next()).max(1) as usize
            }
            "--overload-policy" => {
                let Some(raw) = args.next() else { usage() };
                let Some(p) = parse_overload(raw.trim()) else {
                    eprintln!("eccparityd: --overload-policy wants block|shed, got `{raw}`");
                    usage();
                };
                cfg.overload = p;
            }
            "--watchdog-ms" => cfg.watchdog_ms = parse_u64("--watchdog-ms", args.next()),
            "--io-mode" => {
                let Some(raw) = args.next() else { usage() };
                let Some(m) = IoMode::parse(raw.trim()) else {
                    eprintln!("eccparityd: --io-mode wants threads|evented, got `{raw}`");
                    usage();
                };
                srv.io_mode = m;
            }
            "--io-shards" => srv.io_shards = parse_u64("--io-shards", args.next()).max(1) as usize,
            "--push-queue" => cfg.push_queue = parse_u64("--push-queue", args.next()).max(1) as usize,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("eccparityd: unknown flag `{other}`");
                usage();
            }
        }
    }
    if !cfg.geom.banks.is_multiple_of(2) {
        eprintln!("eccparityd: --banks must be even (banks pair within a channel)");
        usage();
    }
    if cfg.checkpoint_interval_ms > 0 && cfg.state_dir.is_none() {
        eprintln!("eccparityd: --checkpoint-interval-ms needs --state-dir");
        usage();
    }
    let listen = listen.unwrap_or_else(|| Listen::Unix(PathBuf::from("eccparityd.sock")));
    let geom: Geometry = cfg.geom;
    eprintln!(
        "eccparityd: {} shards, io {}, geometry {}x{} threshold {}, state {}",
        cfg.shards,
        srv.io_mode.name(),
        geom.channels,
        geom.banks,
        geom.threshold,
        cfg.state_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "(none — checkpoints disabled)".to_string()),
    );
    let engine = Arc::new(Engine::start(cfg));
    if let Err(e) = serve(Arc::clone(&engine), listen, srv) {
        eprintln!("eccparityd: listener failed: {e}");
        std::process::exit(3);
    }
    // Clean shutdown: serve() has drained the connection threads (their
    // routers flushed), so this checkpoint sees every in-flight event and
    // the next --resume start matches what clients observed.
    if engine.config().state_dir.is_some() {
        match engine.checkpoint() {
            Ok(info) => eprintln!(
                "eccparityd: final checkpoint {} ({} nodes)",
                info.path.display(),
                info.nodes
            ),
            Err(e) => eprintln!("eccparityd: final checkpoint failed: {e}"),
        }
    }
    engine.shutdown();
    obs::metrics::write_snapshot_if_configured("eccparityd");
}
