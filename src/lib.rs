//! # ecc-parity-repro — umbrella crate
//!
//! Re-exports every workspace crate of the ECC Parity (SC 2014)
//! reproduction so examples and integration tests can use one dependency:
//!
//! * [`ecc_codes`] — the memory ECC codes (chipkill, LOT-ECC, Multi-ECC, RAIM).
//! * [`mem_faults`] — DRAM fault models and Monte Carlo machinery.
//! * [`dram_sim`] — the DDR3 timing/power simulator.
//! * [`ecc_parity`] — the paper's contribution: cross-channel parity of ECC
//!   correction bits.
//! * [`mem_sim`] — the full-system simulator (core + LLC + schemes + DRAM).
//! * [`resilience_analysis`] — reliability/capacity analysis for the paper's
//!   analytic figures.
//!
//! ```
//! use ecc_parity_repro::ecc_codes::OverheadModel;
//!
//! // Table III, 8-channel LOT-ECC5 + ECC Parity: 16.5% capacity overhead.
//! let b = OverheadModel::ecc_parity(0.25, 8);
//! assert!((b.total() - 0.165).abs() < 1e-3);
//! ```

pub use dram_sim;
pub use ecc_codes;
pub use ecc_parity;
pub use mem_faults;
pub use mem_sim;
pub use resilience_analysis;
